// Integration and property tests across the full stack: the runner, the
// three strategies, determinism, measurement instruments, and
// parameterized sweeps over (code x frequency).
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <string>
#include <tuple>

#include "apps/npb.hpp"
#include "campaign/sweeps.hpp"
#include "core/runner.hpp"
#include "core/strategies.hpp"

using namespace pcd;

namespace {
constexpr double kTinyScale = 0.05;
}

TEST(Runner, DeterministicForEqualSeeds) {
  core::RunConfig cfg;
  cfg.seed = 7;
  const auto a = core::run_workload(apps::make_cg(kTinyScale), cfg);
  const auto b = core::run_workload(apps::make_cg(kTinyScale), cfg);
  EXPECT_DOUBLE_EQ(a.delay_s, b.delay_s);
  EXPECT_DOUBLE_EQ(a.energy_j, b.energy_j);
  EXPECT_EQ(a.net_collisions, b.net_collisions);
}

TEST(Runner, SeedsPerturbStochasticRuns) {
  // IS is collision-heavy, so different seeds give different backoffs.
  core::RunConfig a_cfg, b_cfg;
  a_cfg.seed = 1;
  b_cfg.seed = 2;
  const auto a = core::run_workload(apps::make_is(0.1), a_cfg);
  const auto b = core::run_workload(apps::make_is(0.1), b_cfg);
  EXPECT_NE(a.delay_s, b.delay_s);
}

TEST(Runner, TrialsTakeMedian) {
  core::RunConfig cfg;
  const auto one = core::run_workload(apps::make_ft(kTinyScale), cfg);
  const auto med = campaign::run_trials(apps::make_ft(kTinyScale), cfg, 3);
  // Median of three near-identical runs stays close to a single run.
  EXPECT_NEAR(med.delay_s, one.delay_s, 0.05 * one.delay_s);
  EXPECT_THROW(campaign::run_trials(apps::make_ft(kTinyScale), cfg, 0),
               std::invalid_argument);
}

TEST(Runner, StaticFrequencyIsApplied) {
  core::RunConfig cfg;
  cfg.static_mhz = 600;
  const auto slow = core::run_workload(apps::make_ep(kTinyScale), cfg);
  cfg.static_mhz = 1400;
  const auto fast = core::run_workload(apps::make_ep(kTinyScale), cfg);
  EXPECT_NEAR(slow.delay_s / fast.delay_s, 1400.0 / 600.0, 0.15);
}

TEST(Runner, MetersTrackExactEnergyOnLongRuns) {
  core::RunConfig cfg;
  cfg.use_meters = true;
  const auto r = core::run_workload(apps::make_ft(0.5), cfg);
  ASSERT_GT(r.energy_acpi_j, 0);
  ASSERT_GT(r.energy_baytech_j, 0);
  EXPECT_NEAR(r.energy_acpi_j, r.energy_j, 0.12 * r.energy_j);
  // The Baytech strip reports one-minute averages, so a ~30 s run is
  // diluted by the idle remainder of its last window (why the paper used
  // it only as a cross-check on long runs).
  EXPECT_NEAR(r.energy_baytech_j, r.energy_j, 0.35 * r.energy_j);
}

TEST(Runner, BaytechConvergesOnMultiMinuteRuns) {
  core::RunConfig cfg;
  cfg.use_meters = true;
  const auto r = core::run_workload(apps::make_ft(3.0), cfg);  // ~6 minutes
  EXPECT_NEAR(r.energy_baytech_j, r.energy_j, 0.10 * r.energy_j);
  EXPECT_NEAR(r.energy_acpi_j, r.energy_j, 0.08 * r.energy_j);
}

TEST(Runner, TraceCollectionAttachesProfile) {
  core::RunConfig cfg;
  cfg.collect_trace = true;
  const auto r = core::run_workload(apps::make_ft(kTinyScale), cfg);
  ASSERT_TRUE(r.profile.has_value());
  EXPECT_EQ(r.profile->ranks.size(), 8u);
  EXPECT_FALSE(r.timeline.empty());
}

TEST(Runner, UtilizationIsAFraction) {
  core::RunConfig cfg;
  const auto r = core::run_workload(apps::make_mg(kTinyScale), cfg);
  EXPECT_GT(r.mean_utilization, 0.3);
  EXPECT_LE(r.mean_utilization, 1.0);
}

// --- Strategy-level results -----------------------------------------------

TEST(Strategies, FtInternalBeatsExternalOnDelayAtSimilarEnergy) {
  auto ft = apps::make_ft(0.25);
  core::RunConfig base_cfg;
  const auto base = core::run_workload(ft, base_cfg);

  core::RunConfig internal_cfg;
  internal_cfg.hooks = core::internal_phase_hooks(1400, 600);
  const auto internal = core::run_workload(ft, internal_cfg);

  core::RunConfig ext_cfg;
  ext_cfg.static_mhz = 600;
  const auto external = core::run_workload(ft, ext_cfg);

  // Paper §5.3.1: internal ~0.64 energy at ~1.00 delay; external@600 saves
  // slightly more energy but pays 13% delay.
  EXPECT_LT(internal.delay_s / base.delay_s, 1.03);
  EXPECT_LT(internal.energy_j / base.energy_j, 0.75);
  EXPECT_GT(external.delay_s / base.delay_s, 1.08);
  EXPECT_LT(std::abs(external.energy_j / base.energy_j -
                     internal.energy_j / base.energy_j), 0.10);
}

TEST(Strategies, CgPhasePoliciesHurtButRankPolicyWorks) {
  auto cg = apps::make_cg(0.1);
  core::RunConfig base_cfg;
  const auto base = core::run_workload(cg, base_cfg);

  // Rejected policy: scaling around every message loses on both axes.
  core::RunConfig comm_cfg;
  comm_cfg.hooks = core::internal_comm_scaling_hooks(1400, 600);
  const auto comm_pol = core::run_workload(cg, comm_cfg);
  EXPECT_GT(comm_pol.delay_s, base.delay_s);

  // Adopted policy: heterogeneous per-rank speeds save energy.
  core::RunConfig hetero_cfg;
  hetero_cfg.hooks = core::internal_rank_speed_hooks(
      [](int rank) { return rank <= 3 ? 1200 : 800; });
  const auto hetero = core::run_workload(cg, hetero_cfg);
  EXPECT_LT(hetero.energy_j / base.energy_j, 0.90);
  EXPECT_LT(hetero.delay_s / base.delay_s, 1.15);
}

TEST(Strategies, SweepNormalizesAgainstHighestFrequency) {
  auto sweep = campaign::sweep_static(apps::make_cg(kTinyScale), core::RunConfig{},
                                  {600, 1400});
  const auto c = sweep.normalized();
  EXPECT_DOUBLE_EQ(c.at(1400).delay, 1.0);
  EXPECT_DOUBLE_EQ(c.at(1400).energy, 1.0);
  EXPECT_GT(c.at(600).delay, 1.0);
  EXPECT_LT(c.at(600).energy, 1.0);
}

TEST(Strategies, ExternalRunUsesChosenFrequency) {
  auto cg = apps::make_cg(kTinyScale);
  core::RunConfig cfg;
  auto sweep = campaign::sweep_static(cg, cfg);
  const auto decision = core::run_external(cg, cfg, sweep, core::Metric::ED2P);
  EXPECT_TRUE(decision.choice.freq_mhz >= 600 && decision.choice.freq_mhz <= 1400);
  EXPECT_GT(decision.result.delay_s, 0);
}

TEST(Strategies, DaemonReducesEnergyOnCommBoundCode) {
  auto ft = apps::make_ft(0.5);
  core::RunConfig base_cfg;
  base_cfg.static_mhz = 1400;
  const auto base = core::run_workload(ft, base_cfg);
  core::RunConfig cfg;
  cfg.daemon = core::CpuspeedParams::v1_2_1();
  const auto run = core::run_workload(ft, cfg);
  EXPECT_LT(run.energy_j / base.energy_j, 0.85);   // paper: 24% saving
  EXPECT_LT(run.delay_s / base.delay_s, 1.20);
}

TEST(Strategies, DaemonLeavesEpAlone) {
  auto ep = apps::make_ep(0.25);
  core::RunConfig base_cfg;
  base_cfg.static_mhz = 1400;
  const auto base = core::run_workload(ep, base_cfg);
  core::RunConfig cfg;
  cfg.daemon = core::CpuspeedParams::v1_2_1();
  const auto run = core::run_workload(ep, cfg);
  EXPECT_LT(run.delay_s / base.delay_s, 1.05);  // paper: 1-2% delay
}

// --- Property sweep: code x frequency ---------------------------------------

class StaticSweepProperty
    : public ::testing::TestWithParam<std::tuple<std::string, int>> {};

TEST_P(StaticSweepProperty, DelayAndEnergyBehaveSanely) {
  const auto& [code, freq] = GetParam();
  auto workload = *apps::npb_by_name(code, kTinyScale);

  core::RunConfig base_cfg;
  base_cfg.static_mhz = 1400;
  base_cfg.seed = 11;
  const auto base = campaign::run_trials(workload, base_cfg, 2);

  core::RunConfig cfg;
  cfg.static_mhz = freq;
  cfg.seed = 11;
  const auto run = campaign::run_trials(workload, cfg, 2);

  const double delay_n = run.delay_s / base.delay_s;
  const double energy_n = run.energy_j / base.energy_j;

  // Delay never improves beyond the collision margin, and never exceeds
  // the pure-CPU bound 1400/f (plus small sync noise).
  EXPECT_GT(delay_n, 0.80) << code << "@" << freq;
  EXPECT_LT(delay_n, 1400.0 / freq + 0.10) << code << "@" << freq;
  // Energy stays within physical bounds: no more than the slowdown ratio,
  // never below the V^2 f floor (~0.15 of baseline power).
  EXPECT_LT(energy_n, std::max(1.25, delay_n)) << code << "@" << freq;
  EXPECT_GT(energy_n, 0.15 * delay_n) << code << "@" << freq;
}

INSTANTIATE_TEST_SUITE_P(
    AllCodesAllFreqs, StaticSweepProperty,
    ::testing::Combine(::testing::Values("BT", "CG", "EP", "FT", "IS", "LU", "MG",
                                         "SP"),
                       ::testing::Values(600, 800, 1000, 1200)),
    [](const ::testing::TestParamInfo<StaticSweepProperty::ParamType>& info) {
      return std::get<0>(info.param) + "_" + std::to_string(std::get<1>(info.param));
    });

class MonotoneDelayProperty : public ::testing::TestWithParam<std::string> {};

TEST_P(MonotoneDelayProperty, DelayDecreasesWithFrequency) {
  // For collision-free codes, delay must be monotone non-increasing in f.
  auto workload = *apps::npb_by_name(GetParam(), kTinyScale);
  core::RunConfig cfg;
  cfg.seed = 3;
  double prev = 1e100;
  for (int f : {600, 800, 1000, 1200, 1400}) {
    core::RunConfig c = cfg;
    c.static_mhz = f;
    const auto r = core::run_workload(workload, c);
    EXPECT_LE(r.delay_s, prev * 1.005) << GetParam() << "@" << f;
    prev = r.delay_s;
  }
}

// IS and SP are excluded by design: their collision tax makes delay
// non-monotone (the paper's §5.2 anomaly).
INSTANTIATE_TEST_SUITE_P(CollisionFreeCodes, MonotoneDelayProperty,
                         ::testing::Values("BT", "CG", "EP", "FT", "LU", "MG"));

class EnergyMonotoneProperty : public ::testing::TestWithParam<std::string> {};

TEST_P(EnergyMonotoneProperty, EnergyRisesWithFrequencyForSlackCodes) {
  // Type III/IV codes: total energy increases with frequency.
  auto workload = *apps::npb_by_name(GetParam(), kTinyScale);
  core::RunConfig cfg;
  cfg.seed = 5;
  double prev = 0;
  for (int f : {600, 800, 1000, 1200, 1400}) {
    core::RunConfig c = cfg;
    c.static_mhz = f;
    const auto r = core::run_workload(workload, c);
    EXPECT_GE(r.energy_j, prev * 0.995) << GetParam() << "@" << f;
    prev = r.energy_j;
  }
}

INSTANTIATE_TEST_SUITE_P(SlackCodes, EnergyMonotoneProperty,
                         ::testing::Values("FT", "CG", "IS", "SP"));
