// Tests for the node/cluster assembly layer.
#include <gtest/gtest.h>

#include "machine/cluster.hpp"
#include "sim/engine.hpp"
#include "sim/process.hpp"

namespace sim = pcd::sim;
using pcd::machine::Cluster;
using pcd::machine::ClusterConfig;

TEST(Cluster, BuildsRequestedNodeCount) {
  sim::Engine e;
  ClusterConfig cfg;
  cfg.nodes = 16;  // NEMO
  Cluster c(e, cfg);
  EXPECT_EQ(c.size(), 16);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(c.node(i).id(), i);
    EXPECT_EQ(c.node(i).cpu().frequency_mhz(), 1400);
  }
  EXPECT_EQ(c.network().nodes(), 16);
}

TEST(Cluster, RejectsEmptyCluster) {
  sim::Engine e;
  ClusterConfig cfg;
  cfg.nodes = 0;
  EXPECT_THROW(Cluster(e, cfg), std::invalid_argument);
}

TEST(Cluster, SetAllCpuspeedIsPsetcpuspeed) {
  sim::Engine e;
  ClusterConfig cfg;
  cfg.nodes = 4;
  cfg.node.cpu.transition_min = cfg.node.cpu.transition_max = sim::from_micros(20);
  Cluster c(e, cfg);
  c.set_all_cpuspeed(800);
  e.run();
  for (int i = 0; i < 4; ++i) EXPECT_EQ(c.node(i).cpu().frequency_mhz(), 800);
}

TEST(Cluster, TotalEnergySumsNodes) {
  sim::Engine e;
  ClusterConfig cfg;
  cfg.nodes = 3;
  Cluster c(e, cfg);
  e.schedule_at(10 * sim::kSecond, [] {});
  e.run();
  double sum = 0;
  for (int i = 0; i < 3; ++i) sum += c.node(i).power().energy_joules();
  EXPECT_NEAR(c.total_energy_joules(), sum, 1e-9);
  EXPECT_GT(sum, 0);
}

TEST(Cluster, NodesHaveIndependentRngStreams) {
  // Transition latencies differ across nodes (per-node seeds).
  sim::Engine e;
  ClusterConfig cfg;
  cfg.nodes = 8;
  Cluster c(e, cfg);
  c.set_all_cpuspeed(600);
  e.run();
  bool all_equal = true;
  const auto first = c.node(0).cpu().stats().transition_stall_ns;
  for (int i = 1; i < 8; ++i) {
    all_equal = all_equal && (c.node(i).cpu().stats().transition_stall_ns == first);
  }
  EXPECT_FALSE(all_equal);
}

TEST(Cluster, NicActivityReachesNodePower) {
  sim::Engine e;
  ClusterConfig cfg;
  cfg.nodes = 2;
  cfg.network.collision_coeff = 0;
  Cluster c(e, cfg);
  double during = 0;
  auto xfer = [&]() -> sim::Process {
    co_await c.network().transfer(0, 1, 1'000'000, 1.0);
  };
  sim::spawn(e, xfer());
  e.schedule_at(40 * sim::kMillisecond, [&] { during = c.node(0).power().breakdown().nic; });
  e.run();
  const double idle = c.node(0).power().breakdown().nic;
  EXPECT_GT(during, idle);
}

TEST(Cluster, DifferentSeedsProduceDifferentStreams) {
  auto stall_signature = [](std::uint64_t seed) {
    sim::Engine e;
    ClusterConfig cfg;
    cfg.nodes = 2;
    cfg.seed = seed;
    Cluster c(e, cfg);
    c.set_all_cpuspeed(600);
    e.run();
    return c.node(0).cpu().stats().transition_stall_ns;
  };
  EXPECT_EQ(stall_signature(1), stall_signature(1));
  EXPECT_NE(stall_signature(1), stall_signature(2));
}

TEST(Cluster, BatteryPerNode) {
  sim::Engine e;
  ClusterConfig cfg;
  cfg.nodes = 2;
  Cluster c(e, cfg);
  c.node(0).battery().disconnect_ac();
  e.schedule_at(30 * sim::kSecond, [] {});
  e.run();
  EXPECT_LT(c.node(0).battery().true_remaining_mwh(), 53000.0);
  EXPECT_DOUBLE_EQ(c.node(1).battery().true_remaining_mwh(), 53000.0);
}
