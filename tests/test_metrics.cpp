// Unit tests for the energy-performance metrics, operating-point selection,
// and crescendo classification.
#include <gtest/gtest.h>

#include "analysis/crescendo.hpp"
#include "analysis/reference.hpp"
#include "core/metrics.hpp"

using pcd::core::Crescendo;
using pcd::core::EnergyDelay;
using pcd::core::Metric;

TEST(Metrics, FusedValues) {
  const EnergyDelay ed{0.8, 1.1};
  EXPECT_DOUBLE_EQ(pcd::core::fused_value(Metric::EDP, ed), 0.8 * 1.1);
  EXPECT_DOUBLE_EQ(pcd::core::fused_value(Metric::ED2P, ed), 0.8 * 1.1 * 1.1);
  EXPECT_DOUBLE_EQ(pcd::core::fused_value(Metric::ED3P, ed), 0.8 * 1.1 * 1.1 * 1.1);
}

TEST(Metrics, WeightedEd2p) {
  const EnergyDelay ed{0.8, 1.1};
  EXPECT_DOUBLE_EQ(pcd::core::weighted_ed2p(ed, 1.0),
                   pcd::core::fused_value(Metric::ED2P, ed));
  EXPECT_GT(pcd::core::weighted_ed2p(ed, 2.0),
            pcd::core::weighted_ed2p(ed, 1.0));  // more weight on delay > 1
}

TEST(Metrics, BaselineHasUnitValue) {
  const EnergyDelay base{1.0, 1.0};
  for (auto m : {Metric::EDP, Metric::ED2P, Metric::ED3P}) {
    EXPECT_DOUBLE_EQ(pcd::core::fused_value(m, base), 1.0);
  }
}

namespace {

Crescendo ft_like() {
  // The paper's FT row.
  return {{600, {0.62, 1.13}},
          {800, {0.70, 1.07}},
          {1000, {0.80, 1.04}},
          {1200, {0.93, 1.02}},
          {1400, {1.00, 1.00}}};
}

Crescendo ep_like() {
  return {{600, {1.15, 2.35}},
          {800, {1.03, 1.75}},
          {1000, {1.02, 1.40}},
          {1200, {1.03, 1.17}},
          {1400, {1.00, 1.00}}};
}

}  // namespace

TEST(Selection, Ed3pPicksModeratePointForFt) {
  const auto c = pcd::core::select_operating_point(ft_like(), Metric::ED3P);
  // ED3P values: 600: .894, 800: .857, 1000: .899, 1200: .987, 1400: 1.
  EXPECT_EQ(c.freq_mhz, 800);
}

TEST(Selection, Ed2pPicksLowerPointThanEd3p) {
  const auto ed2 = pcd::core::select_operating_point(ft_like(), Metric::ED2P);
  const auto ed3 = pcd::core::select_operating_point(ft_like(), Metric::ED3P);
  EXPECT_LE(ed2.freq_mhz, ed3.freq_mhz);
  EXPECT_EQ(ed2.freq_mhz, 600);  // .79 at 600 vs .80 at 800
}

TEST(Selection, TypeIcodeKeepsFullSpeed) {
  for (auto m : {Metric::EDP, Metric::ED2P, Metric::ED3P}) {
    EXPECT_EQ(pcd::core::select_operating_point(ep_like(), m).freq_mhz, 1400)
        << pcd::core::to_string(m);
  }
}

TEST(Selection, TieBreaksTowardBetterPerformance) {
  Crescendo c{{600, {0.50, 2.00}}, {1200, {1.00, 1.00}}};
  // EDP: 600 -> 1.0, 1200 -> 1.0 (tie): must choose the faster 1200.
  const auto choice = pcd::core::select_operating_point(c, Metric::EDP);
  EXPECT_EQ(choice.freq_mhz, 1200);
}

TEST(Selection, EmptyCrescendoThrows) {
  EXPECT_THROW(pcd::core::select_operating_point({}, Metric::EDP),
               std::invalid_argument);
}

TEST(DelayConstrained, PicksLowestEnergyWithinBound) {
  const auto c = pcd::core::select_delay_constrained(ft_like(), 0.05);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->freq_mhz, 1000);  // 1.04 within 5%; energy 0.80 beats 0.93/1.00
}

TEST(DelayConstrained, TightBoundLimitsChoice) {
  const auto c = pcd::core::select_delay_constrained(ft_like(), 0.02);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->freq_mhz, 1200);
}

TEST(DelayConstrained, ZeroBoundFallsBackToBaseline) {
  const auto c = pcd::core::select_delay_constrained(ft_like(), 0.0);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->freq_mhz, 1400);
}

TEST(DelayConstrained, NoFeasiblePoint) {
  Crescendo c{{600, {0.5, 1.5}}, {800, {0.7, 1.2}}};
  EXPECT_FALSE(pcd::core::select_delay_constrained(c, 0.05).has_value());
}

// --- Crescendo classification -------------------------------------------------

TEST(Classify, PaperTable2RowsMatchFigure8Types) {
  using pcd::analysis::CrescendoType;
  for (const auto& row : pcd::analysis::table2()) {
    if (!row.energy_known) continue;  // SP's energies are not published
    Crescendo c;
    for (const auto& [f, ed] : row.at) c[f] = ed;
    const auto type = pcd::analysis::classify_crescendo(c);
    const auto expected =
        pcd::analysis::figure8_types().at(row.code.substr(0, 2));
    EXPECT_EQ(type, expected) << row.code;
  }
}

TEST(Classify, SyntheticTypes) {
  using pcd::analysis::CrescendoType;
  // Type I: no saving, big slowdown.
  Crescendo t1{{600, {1.05, 2.3}}, {1400, {1.0, 1.0}}};
  EXPECT_EQ(pcd::analysis::classify_crescendo(t1), CrescendoType::I);
  // Type II: saving ~ slowdown.
  Crescendo t2{{600, {0.75, 1.30}}, {1400, {1.0, 1.0}}};
  EXPECT_EQ(pcd::analysis::classify_crescendo(t2), CrescendoType::II);
  // Type III: saving >> slowdown.
  Crescendo t3{{600, {0.60, 1.12}}, {1400, {1.0, 1.0}}};
  EXPECT_EQ(pcd::analysis::classify_crescendo(t3), CrescendoType::III);
  // Type IV: saving with no slowdown.
  Crescendo t4{{600, {0.65, 1.02}}, {1400, {1.0, 1.0}}};
  EXPECT_EQ(pcd::analysis::classify_crescendo(t4), CrescendoType::IV);
}

TEST(Classify, RequiresTwoPoints) {
  Crescendo c{{1400, {1.0, 1.0}}};
  EXPECT_THROW(pcd::analysis::classify_crescendo(c), std::invalid_argument);
}

// --- Reference data sanity ----------------------------------------------------

TEST(Reference, TableHasAllEightCodes) {
  EXPECT_EQ(pcd::analysis::table2().size(), 8u);
  for (const char* code : {"BT", "CG", "EP", "FT", "IS", "LU", "MG", "SP"}) {
    EXPECT_NE(pcd::analysis::table2_row(code), nullptr) << code;
  }
  EXPECT_EQ(pcd::analysis::table2_row("XX"), nullptr);
}

TEST(Reference, BaselineColumnsAreUnity) {
  for (const auto& row : pcd::analysis::table2()) {
    EXPECT_DOUBLE_EQ(row.at.at(1400).delay, 1.0) << row.code;
    if (row.energy_known) {
      EXPECT_DOUBLE_EQ(row.at.at(1400).energy, 1.0) << row.code;
    }
  }
}

TEST(Reference, InternalFiguresPresent) {
  EXPECT_EQ(pcd::analysis::figure11_ft().size(), 3u);
  EXPECT_EQ(pcd::analysis::figure14_cg().size(), 4u);
}
