// Tests for the simulated MPI layer over the cluster model.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "machine/cluster.hpp"
#include "mpi/comm.hpp"
#include "sim/engine.hpp"
#include "sim/process.hpp"
#include "trace/profile.hpp"
#include "trace/tracer.hpp"

namespace sim = pcd::sim;
using pcd::machine::Cluster;
using pcd::machine::ClusterConfig;
using pcd::mpi::Comm;
using pcd::mpi::CostParams;

namespace {

ClusterConfig small_cluster(int nodes) {
  ClusterConfig c;
  c.nodes = nodes;
  c.network.collision_coeff = 0.0;  // deterministic timing in unit tests
  c.node.cpu.transition_min = c.node.cpu.transition_max = sim::from_micros(20);
  return c;
}

struct MpiFixture {
  sim::Engine engine;
  Cluster cluster;
  Comm comm;
  explicit MpiFixture(int ranks, CostParams costs = {})
      : cluster(engine, small_cluster(ranks)), comm(cluster, iota(ranks), costs) {}

  static std::vector<int> iota(int n) {
    std::vector<int> v(n);
    std::iota(v.begin(), v.end(), 0);
    return v;
  }
};

}  // namespace

TEST(Mpi, BlockingSendRecvDeliversBytes) {
  MpiFixture f(2);
  std::int64_t got = 0;
  auto sender = [&]() -> sim::Process { co_await f.comm.send(0, 1, 5, 4096); };
  auto receiver = [&]() -> sim::Process { got = co_await f.comm.recv(1, 0, 5); };
  sim::spawn(f.engine, sender());
  sim::spawn(f.engine, receiver());
  f.engine.run();
  EXPECT_EQ(got, 4096);
  EXPECT_EQ(f.comm.stats().messages, 1);
  EXPECT_EQ(f.comm.stats().bytes, 4096);
}

TEST(Mpi, MessagesBetweenSamePairAreOrdered) {
  MpiFixture f(2);
  std::vector<std::int64_t> got;
  auto sender = [&]() -> sim::Process {
    co_await f.comm.send(0, 1, 1, 100);
    co_await f.comm.send(0, 1, 1, 200);
    co_await f.comm.send(0, 1, 1, 300);
  };
  auto receiver = [&]() -> sim::Process {
    for (int i = 0; i < 3; ++i) got.push_back(co_await f.comm.recv(1, 0, 1));
  };
  sim::spawn(f.engine, sender());
  sim::spawn(f.engine, receiver());
  f.engine.run();
  EXPECT_EQ(got, (std::vector<std::int64_t>{100, 200, 300}));
}

TEST(Mpi, TagsSelectMessages) {
  MpiFixture f(2);
  std::int64_t got_a = 0, got_b = 0;
  auto sender = [&]() -> sim::Process {
    std::vector<Comm::Request> reqs;
    reqs.push_back(f.comm.isend(0, 1, /*tag=*/7, 111));
    reqs.push_back(f.comm.isend(0, 1, /*tag=*/9, 222));
    co_await f.comm.waitall(0, std::move(reqs));
  };
  auto receiver = [&]() -> sim::Process {
    got_b = co_await f.comm.recv(1, 0, 9);  // out of arrival order
    got_a = co_await f.comm.recv(1, 0, 7);
  };
  sim::spawn(f.engine, sender());
  sim::spawn(f.engine, receiver());
  f.engine.run();
  EXPECT_EQ(got_a, 111);
  EXPECT_EQ(got_b, 222);
}

TEST(Mpi, AnySourceReceivesFromEither) {
  MpiFixture f(3);
  std::int64_t total = 0;
  auto sender = [&](int rank) -> sim::Process { co_await f.comm.send(rank, 2, 1, 50); };
  auto receiver = [&]() -> sim::Process {
    total += co_await f.comm.recv(2, Comm::kAnySource, 1);
    total += co_await f.comm.recv(2, Comm::kAnySource, 1);
  };
  sim::spawn(f.engine, sender(0));
  sim::spawn(f.engine, sender(1));
  sim::spawn(f.engine, receiver());
  f.engine.run();
  EXPECT_EQ(total, 100);
}

TEST(Mpi, EagerSendCompletesWithoutReceiver) {
  CostParams costs;
  costs.eager_limit = 64 * 1024;
  MpiFixture f(2, costs);
  bool sent = false;
  auto sender = [&]() -> sim::Process {
    co_await f.comm.send(0, 1, 1, 1024);  // below eager limit
    sent = true;
  };
  sim::spawn(f.engine, sender());
  f.engine.run();
  EXPECT_TRUE(sent);  // no matching recv ever posted
}

TEST(Mpi, RendezvousSendWaitsForReceivePosting) {
  CostParams costs;
  costs.eager_limit = 1024;
  MpiFixture f(2, costs);
  sim::SimTime sent_at = 0, recv_posted_at = 0;
  auto sender = [&]() -> sim::Process {
    co_await f.comm.send(0, 1, 1, 1'000'000);  // rendezvous
    sent_at = f.engine.now();
  };
  auto receiver = [&]() -> sim::Process {
    co_await sim::delay(2 * sim::kSecond);  // receiver is late
    recv_posted_at = f.engine.now();
    co_await f.comm.recv(1, 0, 1);
  };
  sim::spawn(f.engine, sender());
  sim::spawn(f.engine, receiver());
  f.engine.run();
  EXPECT_GE(sent_at, recv_posted_at);
  EXPECT_GE(sent_at, 2 * sim::kSecond);
}

TEST(Mpi, UnmatchedRecvNeverCompletes) {
  MpiFixture f(2);
  auto req = f.comm.irecv(1, 0, 1);
  f.engine.run();
  EXPECT_FALSE(req->done.signaled());
}

TEST(Mpi, WaitallCompletesAllRequests) {
  MpiFixture f(2);
  auto sender = [&]() -> sim::Process {
    std::vector<Comm::Request> reqs;
    for (int i = 0; i < 4; ++i) reqs.push_back(f.comm.isend(0, 1, i, 2048));
    co_await f.comm.waitall(0, reqs);
    for (const auto& r : reqs) EXPECT_TRUE(r->done.signaled());
  };
  auto receiver = [&]() -> sim::Process {
    for (int i = 0; i < 4; ++i) co_await f.comm.recv(1, 0, i);
  };
  sim::spawn(f.engine, sender());
  sim::spawn(f.engine, receiver());
  f.engine.run();
}

TEST(Mpi, CpuIsWaitPollingDuringBlockingRecv) {
  MpiFixture f(2);
  auto receiver = [&]() -> sim::Process { co_await f.comm.recv(1, 0, 1); };
  auto sender = [&]() -> sim::Process {
    co_await sim::delay(sim::kSecond);
    co_await f.comm.send(0, 1, 1, 100);
  };
  sim::spawn(f.engine, receiver());
  sim::spawn(f.engine, sender());
  pcd::cpu::CpuState seen{};
  f.engine.schedule_at(500 * sim::kMillisecond,
                       [&] { seen = f.cluster.node(1).cpu().state(); });
  f.engine.run();
  EXPECT_EQ(seen, pcd::cpu::CpuState::WaitPoll);
}

// ---- Collectives ------------------------------------------------------------

namespace {

// Runs `body(rank)` on every rank and returns per-rank completion times.
template <typename MakeProc>
std::vector<sim::SimTime> run_all(MpiFixture& f, int ranks, MakeProc make) {
  std::vector<sim::SimTime> done(ranks, 0);
  for (int r = 0; r < ranks; ++r) {
    sim::spawn(f.engine, make(r, &done[r]));
  }
  f.engine.run();
  return done;
}

}  // namespace

TEST(Mpi, BarrierSynchronizesAllRanks) {
  MpiFixture f(8);
  auto proc = [&](int rank, sim::SimTime* out) -> sim::Process {
    co_await sim::delay(rank * 100 * sim::kMillisecond);  // staggered arrival
    co_await f.comm.barrier(rank);
    *out = f.engine.now();
  };
  auto done = run_all(f, 8, proc);
  // No rank may leave before the last (rank 7) arrives at t = 700 ms.
  for (auto t : done) EXPECT_GE(t, 700 * sim::kMillisecond);
}

TEST(Mpi, BcastDeliversToAllRanks) {
  MpiFixture f(8);
  int received = 0;
  auto proc = [&](int rank, sim::SimTime* out) -> sim::Process {
    co_await f.comm.bcast(rank, /*root=*/3, 100'000);
    ++received;
    *out = f.engine.now();
  };
  run_all(f, 8, proc);
  EXPECT_EQ(received, 8);
  // Binomial tree over 8 ranks: 7 messages.
  EXPECT_EQ(f.comm.stats().messages, 7);
}

TEST(Mpi, ReduceConvergesAtRoot) {
  MpiFixture f(8);
  auto proc = [&](int rank, sim::SimTime* out) -> sim::Process {
    co_await f.comm.reduce(rank, /*root=*/0, 50'000);
    *out = f.engine.now();
  };
  auto done = run_all(f, 8, proc);
  EXPECT_EQ(f.comm.stats().messages, 7);
  // Leaves finish before the root.
  EXPECT_GT(done[0], done[7]);
}

TEST(Mpi, AllreduceCompletesEverywhere) {
  MpiFixture f(8);
  int completed = 0;
  auto proc = [&](int rank, sim::SimTime* out) -> sim::Process {
    co_await f.comm.allreduce(rank, 10'000);
    ++completed;
    *out = f.engine.now();
  };
  run_all(f, 8, proc);
  EXPECT_EQ(completed, 8);
  EXPECT_EQ(f.comm.stats().messages, 14);  // reduce 7 + bcast 7
}

TEST(Mpi, AlltoallExchangesAllPairs) {
  MpiFixture f(8);
  auto proc = [&](int rank, sim::SimTime* out) -> sim::Process {
    co_await f.comm.alltoall(rank, 10'000);
    *out = f.engine.now();
  };
  run_all(f, 8, proc);
  EXPECT_EQ(f.comm.stats().messages, 8 * 7);
  EXPECT_EQ(f.comm.stats().bytes, 8 * 7 * 10'000);
}

TEST(Mpi, AlltoallvRespectsPerDestinationSizes) {
  MpiFixture f(4);
  auto proc = [&](int rank, sim::SimTime* out) -> sim::Process {
    std::vector<std::int64_t> sizes(4, 0);
    for (int d = 0; d < 4; ++d) {
      if (d != rank) sizes[d] = 1000 * (rank + 1);
    }
    co_await f.comm.alltoallv(rank, std::move(sizes));
    *out = f.engine.now();
  };
  run_all(f, 4, proc);
  // Total bytes: sum over ranks of 3 * 1000 * (rank+1).
  EXPECT_EQ(f.comm.stats().bytes, 3000 * (1 + 2 + 3 + 4));
}

TEST(Mpi, AlltoallvRejectsWrongSizeVector) {
  MpiFixture f(4);
  EXPECT_THROW(
      {
        auto op = f.comm.alltoallv(0, {1, 2});
        (void)op;
      },
      std::invalid_argument);
}

TEST(Mpi, AllgatherRingMessageCount) {
  MpiFixture f(6);
  auto proc = [&](int rank, sim::SimTime* out) -> sim::Process {
    co_await f.comm.allgather(rank, 5'000);
    *out = f.engine.now();
  };
  run_all(f, 6, proc);
  EXPECT_EQ(f.comm.stats().messages, 6 * 5);  // P*(P-1) ring steps
}

TEST(Mpi, BackToBackCollectivesDoNotCrossTalk) {
  MpiFixture f(4);
  int phase_errors = 0;
  auto proc = [&](int rank, sim::SimTime* out) -> sim::Process {
    for (int it = 0; it < 5; ++it) {
      co_await f.comm.barrier(rank);
      co_await f.comm.alltoall(rank, 1000);
      co_await f.comm.allreduce(rank, 500);
    }
    *out = f.engine.now();
  };
  auto done = run_all(f, 4, proc);
  for (auto t : done) {
    if (t == 0) ++phase_errors;
  }
  EXPECT_EQ(phase_errors, 0);
}

TEST(Mpi, NonPowerOfTwoRanks) {
  MpiFixture f(9);  // BT/SP run on 9 nodes in the paper
  int completed = 0;
  auto proc = [&](int rank, sim::SimTime* out) -> sim::Process {
    co_await f.comm.barrier(rank);
    co_await f.comm.alltoall(rank, 1000);
    co_await f.comm.bcast(rank, 0, 1000);
    co_await f.comm.reduce(rank, 0, 1000);
    ++completed;
    *out = f.engine.now();
  };
  run_all(f, 9, proc);
  EXPECT_EQ(completed, 9);
}

TEST(Mpi, SingleRankCollectivesAreNoops) {
  MpiFixture f(1);
  bool done = false;
  auto proc = [&](int rank, sim::SimTime* out) -> sim::Process {
    co_await f.comm.barrier(rank);
    co_await f.comm.alltoall(rank, 1000);
    co_await f.comm.allreduce(rank, 1000);
    done = true;
    *out = f.engine.now();
  };
  run_all(f, 1, proc);
  EXPECT_TRUE(done);
  EXPECT_EQ(f.comm.stats().messages, 0);
}

// ---- Trace integration ------------------------------------------------------

TEST(MpiTrace, BlockingCallsRecordScopes) {
  sim::Engine engine;
  Cluster cluster(engine, small_cluster(2));
  pcd::trace::Tracer tracer(engine, 2);
  Comm comm(cluster, {0, 1}, CostParams{}, &tracer);
  auto sender = [&]() -> sim::Process { co_await comm.send(0, 1, 1, 100'000); };
  auto receiver = [&]() -> sim::Process { co_await comm.recv(1, 0, 1); };
  sim::spawn(engine, sender());
  sim::spawn(engine, receiver());
  engine.run();
  auto profile = pcd::trace::analyze(tracer);
  EXPECT_EQ(profile.ranks[0].sends, 1);
  EXPECT_EQ(profile.ranks[1].recvs, 1);
  EXPECT_GT(profile.ranks[0].send_s, 0);
  EXPECT_GT(profile.ranks[1].recv_s, 0);
}

TEST(MpiTrace, CollectiveSuppressesNestedP2p) {
  sim::Engine engine;
  Cluster cluster(engine, small_cluster(4));
  pcd::trace::Tracer tracer(engine, 4);
  Comm comm(cluster, {0, 1, 2, 3}, CostParams{}, &tracer);
  auto proc = [&](int rank) -> sim::Process { co_await comm.alltoall(rank, 10'000); };
  for (int r = 0; r < 4; ++r) sim::spawn(engine, proc(r));
  engine.run();
  auto profile = pcd::trace::analyze(tracer);
  for (int r = 0; r < 4; ++r) {
    EXPECT_EQ(profile.ranks[r].collectives, 1);
    EXPECT_EQ(profile.ranks[r].waits, 0);  // nested waits suppressed
  }
}
