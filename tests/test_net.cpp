// Unit tests for the network model: port FIFO serialization, latency,
// contention, the collision/backoff model, NIC activity callbacks.
#include <gtest/gtest.h>

#include <vector>

#include "net/network.hpp"
#include "sim/engine.hpp"
#include "sim/process.hpp"

namespace sim = pcd::sim;
using pcd::net::Network;
using pcd::net::NetworkParams;

namespace {

NetworkParams quiet_params() {
  NetworkParams p;
  p.collision_coeff = 0.0;  // disable stochastic penalties for timing tests
  return p;
}

sim::Process do_transfer(Network& net, int src, int dst, std::int64_t bytes,
                         sim::SimTime* done_at, sim::Engine* engine) {
  co_await net.transfer(src, dst, bytes, 1.0);
  if (done_at != nullptr) *done_at = engine->now();
}

}  // namespace

TEST(Network, UncontendedTimeFormula) {
  sim::Engine e;
  Network net(e, 4, quiet_params(), sim::Rng(1));
  // 1 MB at 100 Mb/s = 8e6 bits / 1e8 bps = 0.08 s, plus 90 us latency.
  const auto t = net.uncontended_time(1'000'000);
  EXPECT_EQ(t, sim::from_micros(90) + sim::from_seconds(0.08));
}

TEST(Network, SingleTransferCompletesAtServicePlusLatency) {
  sim::Engine e;
  Network net(e, 4, quiet_params(), sim::Rng(1));
  sim::SimTime done = 0;
  sim::spawn(e, do_transfer(net, 0, 1, 1'000'000, &done, &e));
  e.run();
  EXPECT_EQ(done, net.uncontended_time(1'000'000));
}

TEST(Network, ZeroByteTransferCostsLatency) {
  sim::Engine e;
  Network net(e, 4, quiet_params(), sim::Rng(1));
  sim::SimTime done = 0;
  sim::spawn(e, do_transfer(net, 0, 1, 0, &done, &e));
  e.run();
  EXPECT_EQ(done, sim::from_micros(90));
}

TEST(Network, SelfTransferIsImmediate) {
  sim::Engine e;
  Network net(e, 4, quiet_params(), sim::Rng(1));
  sim::SimTime done = -1;
  sim::spawn(e, do_transfer(net, 2, 2, 1'000'000, &done, &e));
  e.run();
  EXPECT_EQ(done, 0);
}

TEST(Network, FanInSerializesAtIngressPort) {
  // Two senders to the same receiver: second transfer waits for the first.
  sim::Engine e;
  Network net(e, 4, quiet_params(), sim::Rng(1));
  sim::SimTime done_a = 0, done_b = 0;
  sim::spawn(e, do_transfer(net, 0, 2, 1'000'000, &done_a, &e));
  sim::spawn(e, do_transfer(net, 1, 2, 1'000'000, &done_b, &e));
  e.run();
  const auto wire = sim::from_seconds(0.08);
  EXPECT_EQ(done_a, wire + sim::from_micros(90));
  EXPECT_EQ(done_b, 2 * wire + sim::from_micros(90));
}

TEST(Network, FanOutSerializesAtEgressPort) {
  sim::Engine e;
  Network net(e, 4, quiet_params(), sim::Rng(1));
  sim::SimTime done_a = 0, done_b = 0;
  sim::spawn(e, do_transfer(net, 0, 1, 1'000'000, &done_a, &e));
  sim::spawn(e, do_transfer(net, 0, 2, 1'000'000, &done_b, &e));
  e.run();
  EXPECT_LT(done_a, done_b);
}

TEST(Network, DisjointPairsRunInParallel) {
  sim::Engine e;
  Network net(e, 4, quiet_params(), sim::Rng(1));
  sim::SimTime done_a = 0, done_b = 0;
  sim::spawn(e, do_transfer(net, 0, 1, 1'000'000, &done_a, &e));
  sim::spawn(e, do_transfer(net, 2, 3, 1'000'000, &done_b, &e));
  e.run();
  EXPECT_EQ(done_a, done_b);  // full-duplex switch: no shared port
}

TEST(Network, StatsCountTransfersAndBytes) {
  sim::Engine e;
  Network net(e, 4, quiet_params(), sim::Rng(1));
  sim::spawn(e, do_transfer(net, 0, 1, 1000, nullptr, &e));
  sim::spawn(e, do_transfer(net, 1, 2, 2000, nullptr, &e));
  e.run();
  EXPECT_EQ(net.stats().transfers, 2);
  EXPECT_EQ(net.stats().bytes, 3000);
  EXPECT_EQ(net.stats().collisions, 0);
  EXPECT_EQ(net.in_flight(), 0);
}

TEST(Network, NicActivityCallbackBalanced) {
  sim::Engine e;
  std::vector<int> level(4, 0);
  int max_seen = 0;
  NetworkParams p = quiet_params();
  Network net(e, 4, p, sim::Rng(1), [&](int node, int delta) {
    level[node] += delta;
    max_seen = std::max(max_seen, level[node]);
  });
  sim::spawn(e, do_transfer(net, 0, 1, 500'000, nullptr, &e));
  sim::spawn(e, do_transfer(net, 0, 2, 500'000, nullptr, &e));
  e.run();
  for (int l : level) EXPECT_EQ(l, 0);  // all flows ended
  EXPECT_GE(max_seen, 1);
}

TEST(Network, NoCollisionsBelowOverlapThreshold) {
  sim::Engine e;
  NetworkParams p;
  p.collision_coeff = 1.0;  // would always collide if overlap counted
  p.collision_free_transfers = 8;
  Network net(e, 4, p, sim::Rng(1));
  for (int i = 0; i < 4; ++i) {
    sim::spawn(e, do_transfer(net, i, (i + 1) % 4, 100'000, nullptr, &e));
  }
  e.run();
  EXPECT_EQ(net.stats().collisions, 0);
}

TEST(Network, HeavyOverlapCausesCollisions) {
  sim::Engine e;
  NetworkParams p;
  p.collision_coeff = 0.5;
  p.collision_free_transfers = 1;
  Network net(e, 8, p, sim::Rng(7));
  // 8 ranks all-to-all-ish burst: plenty of overlap, above collision size.
  for (int s = 0; s < 8; ++s) {
    for (int d = 0; d < 8; ++d) {
      if (s != d) sim::spawn(e, do_transfer(net, s, d, 400'000, nullptr, &e));
    }
  }
  e.run();
  EXPECT_GT(net.stats().collisions, 0);
  EXPECT_GT(net.stats().backoff_ns, 0);
}

TEST(Network, CollisionProbabilityGrowsWithSpeedRatio) {
  // Same traffic at speed_ratio 1.0 vs 0.43 (600/1400): higher ratio must
  // produce at least as many collisions on average across seeds.
  auto run_with_ratio = [](double ratio, int seed) {
    sim::Engine e;
    NetworkParams p;
    p.collision_coeff = 0.08;
    p.collision_free_transfers = 1;
    Network net(e, 8, p, sim::Rng(seed));
    auto xfer = [&](int s, int d) -> sim::Process {
      co_await net.transfer(s, d, 400'000, ratio);
    };
    for (int s = 0; s < 8; ++s) {
      for (int d = 0; d < 8; ++d) {
        if (s != d) sim::spawn(e, xfer(s, d));
      }
    }
    e.run();
    return net.stats().collisions;
  };
  std::int64_t fast = 0, slow = 0;
  for (int seed = 0; seed < 20; ++seed) {
    fast += run_with_ratio(1.0, seed);
    slow += run_with_ratio(600.0 / 1400.0, seed);
  }
  EXPECT_GT(fast, slow);
}

TEST(Network, DeterministicForEqualSeeds) {
  auto run_once = [](int seed) {
    sim::Engine e;
    NetworkParams p;
    p.collision_coeff = 0.2;
    p.collision_free_transfers = 0;
    Network net(e, 8, p, sim::Rng(seed));
    auto xfer = [&](int s, int d) -> sim::Process {
      co_await net.transfer(s, d, 300'000, 1.0);
    };
    for (int s = 0; s < 8; ++s) {
      sim::spawn(e, xfer(s, (s + 3) % 8));
    }
    e.run();
    return std::pair(e.now(), net.stats().backoff_ns);
  };
  EXPECT_EQ(run_once(11), run_once(11));
  EXPECT_NE(run_once(11), run_once(12));  // and seeds matter
}

TEST(Network, RejectsEmptyNetwork) {
  sim::Engine e;
  EXPECT_THROW(Network(e, 0, NetworkParams{}, sim::Rng(1)), std::invalid_argument);
}
