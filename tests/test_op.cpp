// Tests for the lazy Op<T> coroutine type used by the MPI layer.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "sim/op.hpp"
#include "sim/process.hpp"

namespace sim = pcd::sim;

namespace {

sim::Op<int> answer() { co_return 42; }

sim::Op<int> delayed_value(int v, sim::SimDuration dt) {
  co_await sim::delay(dt);
  co_return v;
}

sim::Op<> throws_inside() {
  co_await sim::delay(1);
  throw std::runtime_error("op failed");
}

sim::Op<int> sums(int n) {
  int total = 0;
  for (int i = 1; i <= n; ++i) {
    total += co_await delayed_value(i, 10);  // nested Op
  }
  co_return total;
}

}  // namespace

TEST(Op, ReturnsValueToAwaiter) {
  sim::Engine e;
  int got = 0;
  auto proc = [&]() -> sim::Process { got = co_await answer(); };
  sim::spawn(e, proc());
  e.run();
  EXPECT_EQ(got, 42);
}

TEST(Op, LazyUntilAwaited) {
  sim::Engine e;
  bool started = false;
  auto op = [&]() -> sim::Op<> {
    started = true;
    co_return;
  };
  {
    auto pending = op();  // constructed but never awaited
    EXPECT_FALSE(started);
    EXPECT_FALSE(pending.done());
  }  // destroying an unstarted Op must not leak or run it
  EXPECT_FALSE(started);
}

TEST(Op, SuspendsAcrossSimTime) {
  sim::Engine e;
  int got = 0;
  auto proc = [&]() -> sim::Process { got = co_await delayed_value(7, sim::kSecond); };
  sim::spawn(e, proc());
  e.run();
  EXPECT_EQ(got, 7);
  EXPECT_EQ(e.now(), sim::kSecond);
}

TEST(Op, NestedOpsPropagateEngine) {
  sim::Engine e;
  int got = 0;
  auto proc = [&]() -> sim::Process { got = co_await sums(4); };
  sim::spawn(e, proc());
  e.run();
  EXPECT_EQ(got, 10);
  EXPECT_EQ(e.now(), 40);  // 4 nested delays of 10 ns
}

TEST(Op, ExceptionPropagatesToAwaiter) {
  sim::Engine e;
  bool caught = false;
  auto proc = [&]() -> sim::Process {
    try {
      co_await throws_inside();
    } catch (const std::runtime_error& ex) {
      caught = std::string(ex.what()) == "op failed";
    }
  };
  sim::spawn(e, proc());
  e.run();
  EXPECT_TRUE(caught);
}

TEST(Op, UncaughtExceptionSurfacesThroughProcess) {
  sim::Engine e;
  auto proc = []() -> sim::Process { co_await throws_inside(); };
  sim::spawn(e, proc());
  EXPECT_THROW(e.run(), std::runtime_error);
}

TEST(Op, SequentialAwaitsShareTimeline) {
  sim::Engine e;
  std::vector<int> order;
  auto proc = [&]() -> sim::Process {
    order.push_back(co_await delayed_value(1, 100));
    order.push_back(co_await delayed_value(2, 100));
  };
  sim::spawn(e, proc());
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(e.now(), 200);
}

TEST(Op, MoveOnlySemantics) {
  static_assert(!std::is_copy_constructible_v<sim::Op<int>>);
  static_assert(std::is_move_constructible_v<sim::Op<int>>);
  static_assert(!std::is_copy_assignable_v<sim::Op<int>>);
}

TEST(Op, VoidSpecialization) {
  sim::Engine e;
  bool ran = false;
  auto op = [&]() -> sim::Op<> {
    co_await sim::delay(5);
    ran = true;
  };
  auto proc = [&]() -> sim::Process { co_await op(); };
  sim::spawn(e, proc());
  e.run();
  EXPECT_TRUE(ran);
}
