// Unit tests for power models, energy integration, and the simulated
// ACPI battery / Baytech strip measurement instruments.
#include <gtest/gtest.h>

#include <cmath>

#include "cpu/cpu.hpp"
#include "power/cpu_power.hpp"
#include "power/meters.hpp"
#include "power/node_power.hpp"
#include "sim/engine.hpp"
#include "sim/process.hpp"

namespace sim = pcd::sim;
using pcd::cpu::Cpu;
using pcd::cpu::CpuConfig;
using pcd::cpu::OperatingPoint;
using pcd::cpu::OperatingPointTable;
using pcd::power::AcpiBattery;
using pcd::power::AcpiBatteryParams;
using pcd::power::BaytechStrip;
using pcd::power::CpuPowerModel;
using pcd::power::CpuPowerParams;
using pcd::power::NodePowerModel;
using pcd::power::NodePowerParams;

namespace {

struct PowerFixture {
  sim::Engine engine;
  Cpu cpu;
  NodePowerModel node;
  PowerFixture()
      : cpu(engine, OperatingPointTable::pentium_m_1400(),
            [] {
              CpuConfig c;
              c.transition_min = c.transition_max = sim::from_micros(20);
              return c;
            }(),
            sim::Rng(3)),
        node(engine, cpu, NodePowerParams::nemo()) {}
};

sim::Process run_onchip(Cpu& cpu, double cycles) { co_await cpu.run_onchip_cycles(cycles); }

}  // namespace

// ---- CpuPowerModel ---------------------------------------------------------

TEST(CpuPowerModel, TopOpFullActivity) {
  const auto table = OperatingPointTable::pentium_m_1400();
  const auto params = CpuPowerParams::pentium_m();
  CpuPowerModel m(params, table.highest());
  EXPECT_NEAR(m.watts(table.highest(), 1.0), params.busy_watts_max(), 1e-9);
}

TEST(CpuPowerModel, DynamicPartScalesWithV2FPlusClock) {
  const auto table = OperatingPointTable::pentium_m_1400();
  const auto params = CpuPowerParams::pentium_m();
  CpuPowerModel m(params, table.highest());
  const OperatingPoint low = table.lowest();  // 600 MHz / 0.956 V
  const double dyn_lo = m.watts(low, 1.0) - m.watts(low, 0.0);
  const double vr2 = (0.956 * 0.956) / (1.484 * 1.484);
  const double fr = 600.0 / 1400.0;
  EXPECT_NEAR(dyn_lo, params.dynamic_watts_max * vr2 * fr + params.clock_watts_max * fr,
              1e-12);
}

TEST(CpuPowerModel, LeakageScalesWithV2) {
  const auto table = OperatingPointTable::pentium_m_1400();
  CpuPowerModel m(CpuPowerParams::pentium_m(), table.highest());
  const double leak_hi = m.watts(table.highest(), 0.0);
  const double leak_lo = m.watts(table.lowest(), 0.0);
  EXPECT_NEAR(leak_lo / leak_hi, (0.956 * 0.956) / (1.484 * 1.484), 1e-12);
}

TEST(CpuPowerModel, MonotonicInFrequency) {
  const auto table = OperatingPointTable::pentium_m_1400();
  CpuPowerModel m(CpuPowerParams::pentium_m(), table.highest());
  double prev = 0;
  for (const auto& op : table.points()) {
    const double w = m.watts(op, 1.0);
    EXPECT_GT(w, prev);
    prev = w;
  }
}

// ---- NodePowerModel ---------------------------------------------------------

TEST(NodePower, BreakdownComponentsArePositiveAndSum) {
  PowerFixture f;
  const auto b = f.node.breakdown();
  EXPECT_GT(b.cpu, 0);
  EXPECT_GT(b.memory, 0);
  EXPECT_GT(b.disk, 0);
  EXPECT_GT(b.nic, 0);
  EXPECT_GT(b.other, 0);
  EXPECT_NEAR(b.total(), b.cpu + b.memory + b.disk + b.nic + b.other, 1e-12);
}

TEST(NodePower, ConstantIdleEnergyIntegratesExactly) {
  PowerFixture f;
  const double idle_watts = f.node.watts();
  f.engine.schedule_at(10 * sim::kSecond, [] {});
  f.engine.run();
  EXPECT_NEAR(f.node.energy_joules(), idle_watts * 10.0, 1e-9);
}

TEST(NodePower, EnergyAcrossStateChange) {
  PowerFixture f;
  const double idle_watts = f.node.watts();
  sim::spawn(f.engine, run_onchip(f.cpu, 1.4e9));  // 1 s busy
  f.engine.run();
  const double busy_joules_expected = [&] {
    // Busy power: query via a fresh fixture mid-work is awkward; instead
    // compute from the model directly.
    CpuPowerModel m(NodePowerParams::nemo().cpu,
                    OperatingPointTable::pentium_m_1400().highest());
    const auto& p = NodePowerParams::nemo();
    const double cpu_w =
        m.watts(OperatingPointTable::pentium_m_1400().highest(), f.cpu.config().act_onchip);
    const double mem_w = p.mem_idle_watts + p.mem_active_watts * 0.30;
    return cpu_w + mem_w + p.disk_watts + p.nic_idle_watts + p.base_watts;
  }();
  f.engine.schedule_at(2 * sim::kSecond, [] {});
  f.engine.run();
  EXPECT_NEAR(f.node.energy_joules(), busy_joules_expected + idle_watts, 1e-6);
}

TEST(NodePower, NicFlowsRaisePower) {
  PowerFixture f;
  const double before = f.node.watts();
  f.node.set_nic_flows(1);
  const double with_one = f.node.watts();
  f.node.set_nic_flows(3);
  EXPECT_NEAR(f.node.watts(), with_one, 1e-12);  // binary active, not per flow
  EXPECT_NEAR(with_one - before, NodePowerParams::nemo().nic_active_watts, 1e-12);
  f.node.set_nic_flows(0);
  EXPECT_NEAR(f.node.watts(), before, 1e-12);
}

TEST(NodePower, EnergyBreakdownSumsToTotal) {
  PowerFixture f;
  sim::spawn(f.engine, run_onchip(f.cpu, 7e8));
  f.engine.run();
  const auto eb = f.node.energy_breakdown();
  EXPECT_NEAR(eb.total(), f.node.energy_joules(), 1e-9);
  EXPECT_GT(eb.cpu, 0);
  EXPECT_GT(eb.other, 0);
}

TEST(NodePower, LowerFrequencyLowersBusyPower) {
  PowerFixture f;
  double busy_1400 = 0, busy_600 = 0;
  sim::spawn(f.engine, run_onchip(f.cpu, 1.4e9));
  f.engine.schedule_at(sim::kMillisecond, [&] { busy_1400 = f.node.watts(); });
  f.engine.run();
  f.cpu.set_frequency_mhz(600);
  f.engine.run();
  sim::spawn(f.engine, run_onchip(f.cpu, 1.4e9));
  f.engine.schedule_at(f.engine.now() + sim::kMillisecond,
                       [&] { busy_600 = f.node.watts(); });
  f.engine.run();
  EXPECT_GT(busy_1400, 25.0);
  EXPECT_LT(busy_600, busy_1400 - 10.0);  // most of the CPU's ~22 W vanishes
}

TEST(NodePower, TransitionBilledAtHigherVoltage) {
  PowerFixture f;
  f.cpu.set_frequency_mhz(600);
  const double during = f.node.breakdown().cpu;
  f.engine.run();
  const double after = f.node.breakdown().cpu;
  EXPECT_GT(during, after);  // stall at 1.484 V vs idle at 0.956 V
}

// ---- AcpiBattery ------------------------------------------------------------

namespace {

struct BatteryFixture : PowerFixture {
  AcpiBattery battery;
  BatteryFixture()
      : battery(engine, node, AcpiBatteryParams{}, sim::Rng(17)) {}
};

}  // namespace

TEST(AcpiBattery, NoDrainOnAc) {
  BatteryFixture f;
  f.engine.schedule_at(60 * sim::kSecond, [] {});
  f.engine.run();
  EXPECT_DOUBLE_EQ(f.battery.true_remaining_mwh(), 53000.0);
}

TEST(AcpiBattery, DrainsExactlyNodeEnergyOnDc) {
  BatteryFixture f;
  f.battery.disconnect_ac();
  const double e0 = f.node.energy_joules();
  f.engine.schedule_at(100 * sim::kSecond, [] {});
  f.engine.run();
  const double drained_j = f.node.energy_joules() - e0;
  EXPECT_NEAR(f.battery.true_remaining_mwh(), 53000.0 - drained_j / 3.6, 1e-6);
}

TEST(AcpiBattery, ReconnectStopsDrain) {
  BatteryFixture f;
  f.battery.disconnect_ac();
  f.engine.schedule_at(50 * sim::kSecond, [&] { f.battery.connect_ac(); });
  f.engine.schedule_at(200 * sim::kSecond, [] {});
  f.engine.run();
  const double after_50s = 53000.0 - f.node.watts() * 50.0 / 3.6;
  EXPECT_NEAR(f.battery.true_remaining_mwh(), after_50s, 1e-6);
}

TEST(AcpiBattery, ReportedValueIsStaleBetweenRefreshes) {
  BatteryFixture f;
  f.battery.disconnect_ac();
  f.battery.start_polling();
  // Immediately after start, reported is a quantized snapshot of "now".
  const double initial = f.battery.reported_remaining_mwh();
  EXPECT_DOUBLE_EQ(initial, 53000.0);
  // Advance 5 s (< first refresh phase may or may not have hit; compare to
  // truth: reported must lag truth by design within a refresh period).
  f.engine.run_until(5 * sim::kSecond);
  EXPECT_GE(f.battery.reported_remaining_mwh(), f.battery.true_remaining_mwh());
  f.battery.stop_polling();
}

TEST(AcpiBattery, RefreshPeriodWithinPaperBounds) {
  for (int seed = 0; seed < 10; ++seed) {
    sim::Engine e;
    Cpu cpu(e, OperatingPointTable::pentium_m_1400(), CpuConfig{}, sim::Rng(seed));
    NodePowerModel node(e, cpu, NodePowerParams::nemo());
    AcpiBattery b(e, node, AcpiBatteryParams{}, sim::Rng(seed * 7 + 1));
    EXPECT_GE(b.refresh_period(), sim::from_seconds(15.0));
    EXPECT_LE(b.refresh_period(), sim::from_seconds(20.0));
  }
}

TEST(AcpiBattery, ReportedIsQuantizedToWholeMwh) {
  BatteryFixture f;
  f.battery.disconnect_ac();
  f.battery.start_polling();
  f.engine.run_until(120 * sim::kSecond);
  const double reported = f.battery.reported_remaining_mwh();
  EXPECT_DOUBLE_EQ(reported, std::floor(reported));
  EXPECT_LT(reported, 53000.0);
  f.battery.stop_polling();
}

TEST(AcpiBattery, RechargeRestoresFullCapacity) {
  BatteryFixture f;
  f.battery.disconnect_ac();
  f.engine.schedule_at(100 * sim::kSecond, [] {});
  f.engine.run();
  EXPECT_LT(f.battery.true_remaining_mwh(), 53000.0);
  f.battery.connect_ac();
  f.battery.recharge_full();
  EXPECT_DOUBLE_EQ(f.battery.true_remaining_mwh(), 53000.0);
}

TEST(AcpiBattery, MeasurementProtocolRoundTrip) {
  // The paper's §4.2 protocol: charge, disconnect, discharge, run, read.
  BatteryFixture f;
  f.battery.recharge_full();
  f.battery.disconnect_ac();
  f.battery.start_polling();
  f.engine.run_until(300 * sim::kSecond);  // 5-minute pre-discharge
  const double begin = f.battery.reported_remaining_mwh();
  const double true_begin_j = f.node.energy_joules();
  const sim::SimTime t0 = f.engine.now();
  // ~4-minute busy run (polling stays active, so bound the clock instead
  // of draining the queue).
  sim::spawn(f.engine, run_onchip(f.cpu, 1.4e9 * 240));
  f.engine.run_until(t0 + 240 * sim::kSecond);
  const double end = f.battery.reported_remaining_mwh();
  const double true_j = f.node.energy_joules() - true_begin_j;
  f.battery.stop_polling();
  const double measured_j = (begin - end) * 3.6;
  // Metered energy within ~12% of truth for a minutes-long run (refresh
  // staleness at both ends partially cancels).
  EXPECT_NEAR(measured_j, true_j, 0.12 * true_j);
}

// ---- BaytechStrip -----------------------------------------------------------

TEST(Baytech, RecordsOncePerMinute) {
  BatteryFixture f;
  BaytechStrip strip(f.engine, {&f.node});
  strip.start_polling();
  f.engine.run_until(305 * sim::kSecond);
  strip.stop_polling();
  EXPECT_EQ(strip.records().size(), 5u);
  EXPECT_EQ(strip.records()[0].window_end, 60 * sim::kSecond);
}

TEST(Baytech, AverageMatchesConstantPower) {
  BatteryFixture f;
  BaytechStrip strip(f.engine, {&f.node});
  const double idle_watts = f.node.watts();
  strip.start_polling();
  f.engine.run_until(61 * sim::kSecond);
  strip.stop_polling();
  ASSERT_EQ(strip.records().size(), 1u);
  EXPECT_NEAR(strip.records()[0].avg_watts[0], idle_watts, 1e-9);
}

TEST(Baytech, EnergyEstimateOverAlignedWindow) {
  BatteryFixture f;
  BaytechStrip strip(f.engine, {&f.node});
  const double idle_watts = f.node.watts();
  strip.start_polling();
  f.engine.run_until(300 * sim::kSecond);
  strip.stop_polling();
  const double est = strip.estimate_energy_joules(0, 300 * sim::kSecond);
  EXPECT_NEAR(est, idle_watts * 300.0, 1e-6);
}

TEST(Baytech, PartialWindowOverlapIsProrated) {
  BatteryFixture f;
  BaytechStrip strip(f.engine, {&f.node});
  const double idle_watts = f.node.watts();
  strip.start_polling();
  f.engine.run_until(120 * sim::kSecond);
  strip.stop_polling();
  const double est = strip.estimate_energy_joules(30 * sim::kSecond, 90 * sim::kSecond);
  EXPECT_NEAR(est, idle_watts * 60.0, 1e-6);
}
