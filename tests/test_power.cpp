// Unit tests for power models, energy integration, and the simulated
// ACPI battery / Baytech strip measurement instruments.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include "cpu/cpu.hpp"
#include "power/cpu_power.hpp"
#include "power/meters.hpp"
#include "power/node_power.hpp"
#include "power/state_arena.hpp"
#include "sim/engine.hpp"
#include "sim/process.hpp"
#include "sim/provenance.hpp"

namespace sim = pcd::sim;
using pcd::cpu::Cpu;
using pcd::cpu::CpuConfig;
using pcd::cpu::OperatingPoint;
using pcd::cpu::OperatingPointTable;
using pcd::power::AcpiBattery;
using pcd::power::AcpiBatteryParams;
using pcd::power::BaytechStrip;
using pcd::power::CpuPowerModel;
using pcd::power::CpuPowerParams;
using pcd::power::NodePowerModel;
using pcd::power::NodePowerParams;

namespace {

struct PowerFixture {
  sim::Engine engine;
  Cpu cpu;
  NodePowerModel node;
  PowerFixture()
      : cpu(engine, OperatingPointTable::pentium_m_1400(),
            [] {
              CpuConfig c;
              c.transition_min = c.transition_max = sim::from_micros(20);
              return c;
            }(),
            sim::Rng(3)),
        node(engine, cpu, NodePowerParams::nemo()) {}
};

sim::Process run_onchip(Cpu& cpu, double cycles) { co_await cpu.run_onchip_cycles(cycles); }

}  // namespace

// ---- CpuPowerModel ---------------------------------------------------------

TEST(CpuPowerModel, TopOpFullActivity) {
  const auto table = OperatingPointTable::pentium_m_1400();
  const auto params = CpuPowerParams::pentium_m();
  CpuPowerModel m(params, table.highest());
  EXPECT_NEAR(m.watts(table.highest(), 1.0), params.busy_watts_max(), 1e-9);
}

TEST(CpuPowerModel, DynamicPartScalesWithV2FPlusClock) {
  const auto table = OperatingPointTable::pentium_m_1400();
  const auto params = CpuPowerParams::pentium_m();
  CpuPowerModel m(params, table.highest());
  const OperatingPoint low = table.lowest();  // 600 MHz / 0.956 V
  const double dyn_lo = m.watts(low, 1.0) - m.watts(low, 0.0);
  const double vr2 = (0.956 * 0.956) / (1.484 * 1.484);
  const double fr = 600.0 / 1400.0;
  EXPECT_NEAR(dyn_lo, params.dynamic_watts_max * vr2 * fr + params.clock_watts_max * fr,
              1e-12);
}

TEST(CpuPowerModel, LeakageScalesWithV2) {
  const auto table = OperatingPointTable::pentium_m_1400();
  CpuPowerModel m(CpuPowerParams::pentium_m(), table.highest());
  const double leak_hi = m.watts(table.highest(), 0.0);
  const double leak_lo = m.watts(table.lowest(), 0.0);
  EXPECT_NEAR(leak_lo / leak_hi, (0.956 * 0.956) / (1.484 * 1.484), 1e-12);
}

TEST(CpuPowerModel, MonotonicInFrequency) {
  const auto table = OperatingPointTable::pentium_m_1400();
  CpuPowerModel m(CpuPowerParams::pentium_m(), table.highest());
  double prev = 0;
  for (const auto& op : table.points()) {
    const double w = m.watts(op, 1.0);
    EXPECT_GT(w, prev);
    prev = w;
  }
}

// ---- NodePowerModel ---------------------------------------------------------

TEST(NodePower, BreakdownComponentsArePositiveAndSum) {
  PowerFixture f;
  const auto b = f.node.breakdown();
  EXPECT_GT(b.cpu, 0);
  EXPECT_GT(b.memory, 0);
  EXPECT_GT(b.disk, 0);
  EXPECT_GT(b.nic, 0);
  EXPECT_GT(b.other, 0);
  EXPECT_NEAR(b.total(), b.cpu + b.memory + b.disk + b.nic + b.other, 1e-12);
}

TEST(NodePower, ConstantIdleEnergyIntegratesExactly) {
  PowerFixture f;
  const double idle_watts = f.node.watts();
  f.engine.schedule_at(10 * sim::kSecond, [] {});
  f.engine.run();
  EXPECT_NEAR(f.node.energy_joules(), idle_watts * 10.0, 1e-9);
}

TEST(NodePower, EnergyAcrossStateChange) {
  PowerFixture f;
  const double idle_watts = f.node.watts();
  sim::spawn(f.engine, run_onchip(f.cpu, 1.4e9));  // 1 s busy
  f.engine.run();
  const double busy_joules_expected = [&] {
    // Busy power: query via a fresh fixture mid-work is awkward; instead
    // compute from the model directly.
    CpuPowerModel m(NodePowerParams::nemo().cpu,
                    OperatingPointTable::pentium_m_1400().highest());
    const auto& p = NodePowerParams::nemo();
    const double cpu_w =
        m.watts(OperatingPointTable::pentium_m_1400().highest(), f.cpu.config().act_onchip);
    const double mem_w = p.mem_idle_watts + p.mem_active_watts * 0.30;
    return cpu_w + mem_w + p.disk_watts + p.nic_idle_watts + p.base_watts;
  }();
  f.engine.schedule_at(2 * sim::kSecond, [] {});
  f.engine.run();
  EXPECT_NEAR(f.node.energy_joules(), busy_joules_expected + idle_watts, 1e-6);
}

TEST(NodePower, NicFlowsRaisePower) {
  PowerFixture f;
  const double before = f.node.watts();
  f.node.set_nic_flows(1);
  const double with_one = f.node.watts();
  f.node.set_nic_flows(3);
  EXPECT_NEAR(f.node.watts(), with_one, 1e-12);  // binary active, not per flow
  EXPECT_NEAR(with_one - before, NodePowerParams::nemo().nic_active_watts, 1e-12);
  f.node.set_nic_flows(0);
  EXPECT_NEAR(f.node.watts(), before, 1e-12);
}

TEST(NodePower, EnergyBreakdownSumsToTotal) {
  PowerFixture f;
  sim::spawn(f.engine, run_onchip(f.cpu, 7e8));
  f.engine.run();
  const auto eb = f.node.energy_breakdown();
  EXPECT_NEAR(eb.total(), f.node.energy_joules(), 1e-9);
  EXPECT_GT(eb.cpu, 0);
  EXPECT_GT(eb.other, 0);
}

TEST(NodePower, LowerFrequencyLowersBusyPower) {
  PowerFixture f;
  double busy_1400 = 0, busy_600 = 0;
  sim::spawn(f.engine, run_onchip(f.cpu, 1.4e9));
  f.engine.schedule_at(sim::kMillisecond, [&] { busy_1400 = f.node.watts(); });
  f.engine.run();
  f.cpu.set_frequency_mhz(600);
  f.engine.run();
  sim::spawn(f.engine, run_onchip(f.cpu, 1.4e9));
  f.engine.schedule_at(f.engine.now() + sim::kMillisecond,
                       [&] { busy_600 = f.node.watts(); });
  f.engine.run();
  EXPECT_GT(busy_1400, 25.0);
  EXPECT_LT(busy_600, busy_1400 - 10.0);  // most of the CPU's ~22 W vanishes
}

TEST(NodePower, TransitionBilledAtHigherVoltage) {
  PowerFixture f;
  f.cpu.set_frequency_mhz(600);
  const double during = f.node.breakdown().cpu;
  f.engine.run();
  const double after = f.node.breakdown().cpu;
  EXPECT_GT(during, after);  // stall at 1.484 V vs idle at 0.956 V
}

// ---- AcpiBattery ------------------------------------------------------------

namespace {

struct BatteryFixture : PowerFixture {
  AcpiBattery battery;
  BatteryFixture()
      : battery(engine, node, AcpiBatteryParams{}, sim::Rng(17)) {}
};

}  // namespace

TEST(AcpiBattery, NoDrainOnAc) {
  BatteryFixture f;
  f.engine.schedule_at(60 * sim::kSecond, [] {});
  f.engine.run();
  EXPECT_DOUBLE_EQ(f.battery.true_remaining_mwh(), 53000.0);
}

TEST(AcpiBattery, DrainsExactlyNodeEnergyOnDc) {
  BatteryFixture f;
  f.battery.disconnect_ac();
  const double e0 = f.node.energy_joules();
  f.engine.schedule_at(100 * sim::kSecond, [] {});
  f.engine.run();
  const double drained_j = f.node.energy_joules() - e0;
  EXPECT_NEAR(f.battery.true_remaining_mwh(), 53000.0 - drained_j / 3.6, 1e-6);
}

TEST(AcpiBattery, ReconnectStopsDrain) {
  BatteryFixture f;
  f.battery.disconnect_ac();
  f.engine.schedule_at(50 * sim::kSecond, [&] { f.battery.connect_ac(); });
  f.engine.schedule_at(200 * sim::kSecond, [] {});
  f.engine.run();
  const double after_50s = 53000.0 - f.node.watts() * 50.0 / 3.6;
  EXPECT_NEAR(f.battery.true_remaining_mwh(), after_50s, 1e-6);
}

TEST(AcpiBattery, ReportedValueIsStaleBetweenRefreshes) {
  BatteryFixture f;
  f.battery.disconnect_ac();
  f.battery.start_polling();
  // Immediately after start, reported is a quantized snapshot of "now".
  const double initial = f.battery.reported_remaining_mwh();
  EXPECT_DOUBLE_EQ(initial, 53000.0);
  // Advance 5 s (< first refresh phase may or may not have hit; compare to
  // truth: reported must lag truth by design within a refresh period).
  f.engine.run_until(5 * sim::kSecond);
  EXPECT_GE(f.battery.reported_remaining_mwh(), f.battery.true_remaining_mwh());
  f.battery.stop_polling();
}

TEST(AcpiBattery, RefreshPeriodWithinPaperBounds) {
  for (int seed = 0; seed < 10; ++seed) {
    sim::Engine e;
    Cpu cpu(e, OperatingPointTable::pentium_m_1400(), CpuConfig{}, sim::Rng(seed));
    NodePowerModel node(e, cpu, NodePowerParams::nemo());
    AcpiBattery b(e, node, AcpiBatteryParams{}, sim::Rng(seed * 7 + 1));
    EXPECT_GE(b.refresh_period(), sim::from_seconds(15.0));
    EXPECT_LE(b.refresh_period(), sim::from_seconds(20.0));
  }
}

TEST(AcpiBattery, ReportedIsQuantizedToWholeMwh) {
  BatteryFixture f;
  f.battery.disconnect_ac();
  f.battery.start_polling();
  f.engine.run_until(120 * sim::kSecond);
  const double reported = f.battery.reported_remaining_mwh();
  EXPECT_DOUBLE_EQ(reported, std::floor(reported));
  EXPECT_LT(reported, 53000.0);
  f.battery.stop_polling();
}

TEST(AcpiBattery, RechargeRestoresFullCapacity) {
  BatteryFixture f;
  f.battery.disconnect_ac();
  f.engine.schedule_at(100 * sim::kSecond, [] {});
  f.engine.run();
  EXPECT_LT(f.battery.true_remaining_mwh(), 53000.0);
  f.battery.connect_ac();
  f.battery.recharge_full();
  EXPECT_DOUBLE_EQ(f.battery.true_remaining_mwh(), 53000.0);
}

TEST(AcpiBattery, MeasurementProtocolRoundTrip) {
  // The paper's §4.2 protocol: charge, disconnect, discharge, run, read.
  BatteryFixture f;
  f.battery.recharge_full();
  f.battery.disconnect_ac();
  f.battery.start_polling();
  f.engine.run_until(300 * sim::kSecond);  // 5-minute pre-discharge
  const double begin = f.battery.reported_remaining_mwh();
  const double true_begin_j = f.node.energy_joules();
  const sim::SimTime t0 = f.engine.now();
  // ~4-minute busy run (polling stays active, so bound the clock instead
  // of draining the queue).
  sim::spawn(f.engine, run_onchip(f.cpu, 1.4e9 * 240));
  f.engine.run_until(t0 + 240 * sim::kSecond);
  const double end = f.battery.reported_remaining_mwh();
  const double true_j = f.node.energy_joules() - true_begin_j;
  f.battery.stop_polling();
  const double measured_j = (begin - end) * 3.6;
  // Metered energy within ~12% of truth for a minutes-long run (refresh
  // staleness at both ends partially cancels).
  EXPECT_NEAR(measured_j, true_j, 0.12 * true_j);
}

// ---- BaytechStrip -----------------------------------------------------------

TEST(Baytech, RecordsOncePerMinute) {
  BatteryFixture f;
  BaytechStrip strip(f.engine, {&f.node});
  strip.start_polling();
  f.engine.run_until(305 * sim::kSecond);
  strip.stop_polling();
  EXPECT_EQ(strip.records().size(), 5u);
  EXPECT_EQ(strip.records()[0].window_end, 60 * sim::kSecond);
}

TEST(Baytech, AverageMatchesConstantPower) {
  BatteryFixture f;
  BaytechStrip strip(f.engine, {&f.node});
  const double idle_watts = f.node.watts();
  strip.start_polling();
  f.engine.run_until(61 * sim::kSecond);
  strip.stop_polling();
  ASSERT_EQ(strip.records().size(), 1u);
  EXPECT_NEAR(strip.records()[0].avg_watts[0], idle_watts, 1e-9);
}

TEST(Baytech, EnergyEstimateOverAlignedWindow) {
  BatteryFixture f;
  BaytechStrip strip(f.engine, {&f.node});
  const double idle_watts = f.node.watts();
  strip.start_polling();
  f.engine.run_until(300 * sim::kSecond);
  strip.stop_polling();
  const double est = strip.estimate_energy_joules(0, 300 * sim::kSecond);
  EXPECT_NEAR(est, idle_watts * 300.0, 1e-6);
}

TEST(Baytech, PartialWindowOverlapIsProrated) {
  BatteryFixture f;
  BaytechStrip strip(f.engine, {&f.node});
  const double idle_watts = f.node.watts();
  strip.start_polling();
  f.engine.run_until(120 * sim::kSecond);
  strip.stop_polling();
  const double est = strip.estimate_energy_joules(30 * sim::kSecond, 90 * sim::kSecond);
  EXPECT_NEAR(est, idle_watts * 60.0, 1e-6);
}

// ---- NodeStateArena equivalence (DESIGN.md §3.15) ---------------------------
//
// The SoA arena claims the batched kernels (accrue_all / refresh_all) and
// the per-view read path are the *same* integrator: identical arithmetic,
// identical addition order, and pure on the read side.  These tests run a
// fig1/fig9-shaped multi-node scenario — phased compute with mid-segment
// DVS transitions (the cpuspeed daemon's signature move in Figure 9) and
// NIC flow churn (Figure 1's network phase) — under three observation
// modes and require bit-identical energies and digest streams.

namespace {

enum class Observe { None, PerNode, BatchSweep };

struct ArenaRunResult {
  // Cumulative per-node joules captured at each mid-run sample point.
  std::vector<std::vector<double>> samples;
  std::vector<pcd::power::EnergyBreakdown> final_breakdown;
  double arena_total = 0;
  double summed_views = 0;
  std::uint64_t digest_hash = 0;
  std::uint64_t digest_count = 0;
};

sim::Process arena_phases(Cpu& cpu) {
  // ~1.5 ms on-chip at 1.4 GHz, a memory-bound stall, then a short tail
  // segment — the Figure 1 breakdown shape compressed to test scale.
  co_await cpu.run_onchip_cycles(2.1e6);
  co_await cpu.run_memstall(3 * sim::kMillisecond);
  co_await cpu.run_onchip_cycles(1.3e6);
}

ArenaRunResult run_arena_scenario(Observe mode) {
  constexpr int kNodes = 4;
  sim::Engine engine;
  pcd::power::NodeStateArena arena(kNodes);
  std::vector<std::unique_ptr<Cpu>> cpus;
  std::vector<std::unique_ptr<NodePowerModel>> models;
  sim::DigestStream digest;
  for (int i = 0; i < kNodes; ++i) {
    cpus.push_back(std::make_unique<Cpu>(engine,
                                         OperatingPointTable::pentium_m_1400(),
                                         CpuConfig{}, sim::Rng(100 + i)));
    models.push_back(std::make_unique<NodePowerModel>(
        engine, *cpus[i], NodePowerParams::nemo(), &arena, i));
    models.back()->set_digest(&digest, i);
  }

  for (auto& c : cpus) sim::spawn(engine, arena_phases(*c));

  // Mid-segment DVS transitions: 0.5 ms lands inside every node's first
  // on-chip segment, 4 ms inside the memory stall.  Node 3 stays at 1400
  // so the sweep always covers heterogeneous frequencies.
  engine.schedule_at(sim::kMillisecond / 2, [&] {
    cpus[0]->set_frequency_mhz(600);
    cpus[1]->set_frequency_mhz(800);
    cpus[2]->set_frequency_mhz(1000);
  });
  engine.schedule_at(4 * sim::kMillisecond, [&] {
    cpus[0]->set_frequency_mhz(1200);
    cpus[1]->set_frequency_mhz(600);
  });
  // NIC flow churn on a different grid than the DVS events.
  for (int k = 0; k < 6; ++k) {
    engine.schedule_at((3 * k + 1) * sim::kMillisecond, [&, k] {
      for (int i = 0; i < kNodes; ++i) {
        models[static_cast<std::size_t>(i)]->set_nic_flows((k + i) % 3);
      }
    });
  }

  ArenaRunResult out;
  // Observation grid: same times in every mode so the event horizon (and
  // therefore the final now()) is mode-independent.
  for (int s = 1; s <= 8; ++s) {
    engine.schedule_at(2 * s * sim::kMillisecond, [&, mode] {
      std::vector<double> row;
      switch (mode) {
        case Observe::None:
          return;  // the marker event still fires; nothing is read
        case Observe::PerNode:
          for (auto& m : models) row.push_back(m->energy_joules());
          break;
        case Observe::BatchSweep: {
          arena.accrue_all(engine.now());
          arena.refresh_all();
          for (int i = 0; i < kNodes; ++i) {
            const double* j = arena.joules(i);
            double t = 0;
            for (int c = 0; c < pcd::power::NodeStateArena::kComponents; ++c) {
              t += j[c];
            }
            row.push_back(t);
          }
          break;
        }
      }
      out.samples.push_back(std::move(row));
    });
  }
  engine.schedule_at(20 * sim::kMillisecond, [] {});
  engine.run();

  for (auto& m : models) out.final_breakdown.push_back(m->energy_breakdown());
  arena.accrue_all(engine.now());
  out.arena_total = arena.total_joules();
  for (auto& m : models) out.summed_views += m->energy_joules();
  out.digest_hash = digest.hash;
  out.digest_count = digest.count;
  return out;
}

}  // namespace

TEST(NodeStateArena, ViewAndBatchObservationAreBitIdentical) {
  // Under the *same* observation grid, the per-view read path and the
  // batched accrue_all sweep are the same integrator: final energies and
  // the digest stream must match bit for bit.  (An observation itself
  // materializes the lazy accrual at the read time — splitting one
  // constant-draw interval into two float additions — so runs with
  // *different* read schedules agree only to ULPs.  That was equally true
  // of the per-object model, which accrued on every read; what the arena
  // must guarantee is that *how* you observe never changes the bits.)
  const auto per_node = run_arena_scenario(Observe::PerNode);
  const auto sweep = run_arena_scenario(Observe::BatchSweep);

  ASSERT_EQ(per_node.final_breakdown.size(), sweep.final_breakdown.size());
  for (std::size_t i = 0; i < per_node.final_breakdown.size(); ++i) {
    const auto& a = per_node.final_breakdown[i];
    const auto& b = sweep.final_breakdown[i];
    EXPECT_EQ(a.cpu, b.cpu) << "node " << i;
    EXPECT_EQ(a.memory, b.memory) << "node " << i;
    EXPECT_EQ(a.disk, b.disk) << "node " << i;
    EXPECT_EQ(a.nic, b.nic) << "node " << i;
    EXPECT_EQ(a.other, b.other) << "node " << i;
  }
  EXPECT_EQ(per_node.digest_hash, sweep.digest_hash);
  EXPECT_EQ(per_node.digest_count, sweep.digest_count);
  EXPECT_GT(per_node.digest_count, 0u);  // the scenario did fold real steps
}

TEST(NodeStateArena, ObservationNeverFoldsDigestRecords) {
  // The digest is a function of the simulation, not of who observed it:
  // reads accrue but never fold, so the record *count* is identical across
  // all observation modes — including none at all.
  const auto none = run_arena_scenario(Observe::None);
  const auto per_node = run_arena_scenario(Observe::PerNode);
  const auto sweep = run_arena_scenario(Observe::BatchSweep);
  EXPECT_EQ(none.digest_count, per_node.digest_count);
  EXPECT_EQ(none.digest_count, sweep.digest_count);
  EXPECT_GT(none.digest_count, 0u);
}

TEST(NodeStateArena, RepeatedRunsAreDeterministic) {
  // Same scenario, same observation schedule: every bit reproduces,
  // including the transition-latency RNG draws and the digest hash.
  const auto a = run_arena_scenario(Observe::None);
  const auto b = run_arena_scenario(Observe::None);
  EXPECT_EQ(a.digest_hash, b.digest_hash);
  EXPECT_EQ(a.digest_count, b.digest_count);
  ASSERT_EQ(a.final_breakdown.size(), b.final_breakdown.size());
  for (std::size_t i = 0; i < a.final_breakdown.size(); ++i) {
    EXPECT_EQ(a.final_breakdown[i].cpu, b.final_breakdown[i].cpu);
    EXPECT_EQ(a.final_breakdown[i].memory, b.final_breakdown[i].memory);
    EXPECT_EQ(a.final_breakdown[i].nic, b.final_breakdown[i].nic);
  }
  EXPECT_EQ(a.arena_total, b.arena_total);
}

TEST(NodeStateArena, PerNodeReadsMatchBatchSweepsMidRun) {
  const auto per_node = run_arena_scenario(Observe::PerNode);
  const auto sweep = run_arena_scenario(Observe::BatchSweep);
  // The view read path (accrue_lane at read time) and the batch kernel
  // (accrue_all + refresh_all) must agree bitwise at every sample point,
  // including samples taken mid-transition and mid-NIC-burst.
  ASSERT_EQ(per_node.samples.size(), sweep.samples.size());
  ASSERT_FALSE(per_node.samples.empty());
  for (std::size_t s = 0; s < per_node.samples.size(); ++s) {
    ASSERT_EQ(per_node.samples[s].size(), sweep.samples[s].size());
    for (std::size_t i = 0; i < per_node.samples[s].size(); ++i) {
      EXPECT_EQ(per_node.samples[s][i], sweep.samples[s][i])
          << "sample " << s << " node " << i;
    }
  }
}

TEST(NodeStateArena, TotalJoulesMatchesViewSumBitwise) {
  // total_joules accumulates per lane in component order, then sums lanes
  // in node order — the exact addition order of summing energy_joules()
  // node by node, so the cluster-level total is bitwise-stable against
  // the per-node path.
  const auto r = run_arena_scenario(Observe::None);
  EXPECT_EQ(r.arena_total, r.summed_views);
}
