// Tests for the energy-attribution profiler: capture, per-scope energy,
// cross-rank critical path / slack, the DVS advisor, and the
// zero-perturbation guarantee of profiled runs.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "apps/npb.hpp"
#include "core/runner.hpp"
#include "core/strategies.hpp"
#include "profiler/profiler.hpp"
#include "sim/time.hpp"

using namespace pcd;

namespace {

trace::Record rec(trace::Cat cat, double begin_s, double end_s,
                  const char* label = "") {
  trace::Record r;
  r.cat = cat;
  r.begin = sim::from_seconds(begin_s);
  r.end = sim::from_seconds(end_s);
  r.label = label;
  return r;
}

/// Hand-scripted two-rank trace:
///   rank 0: Compute [0,1], Send [1,1.1]         (then idle)
///   rank 1: Compute [0,0.5], Recv [0.5,1.2], Compute [1.2,1.5]
///   message rank0 -> rank1: sent at 1.0, received at 1.2
/// Critical path: r0 Compute -> message -> r1 trailing Compute.
/// r0's Send has 0.4 s slack (its local end is not downstream of anything);
/// r1's early Compute has 0.7 s (the Recv absorbs upstream movement).
profiler::RunTrace scripted_trace() {
  profiler::RunTrace run;
  run.records.resize(2);
  run.records[0].push_back(rec(trace::Cat::Compute, 0.0, 1.0));
  run.records[0].push_back(rec(trace::Cat::Send, 1.0, 1.1));
  run.records[1].push_back(rec(trace::Cat::Compute, 0.0, 0.5));
  run.records[1].push_back(rec(trace::Cat::Recv, 0.5, 1.2));
  run.records[1].push_back(rec(trace::Cat::Compute, 1.2, 1.5));
  trace::MessageEvent m;
  m.src = 0;
  m.dst = 1;
  m.bytes = 1024;
  m.t_send = sim::from_seconds(1.0);
  m.t_delivered = sim::from_seconds(1.15);
  m.t_recv_done = sim::from_seconds(1.2);
  run.messages.push_back(m);
  run.t_end = sim::from_seconds(1.5);
  run.table = cpu::OperatingPointTable::pentium_m_1400();
  run.profile_mhz = 1400;
  return run;
}

core::RunResult profiled_run(const apps::Workload& w, std::uint64_t seed = 1) {
  core::RunConfig cfg;
  cfg.seed = seed;
  cfg.profile = true;
  return core::run_workload(w, cfg);
}

}  // namespace

// ---- critical path and slack on a scripted trace ----------------------------

TEST(CriticalPath, ScriptedTraceSlackMatchesHandDerivation) {
  const auto run = scripted_trace();
  const auto slack = profiler::analyze_slack(run);

  EXPECT_DOUBLE_EQ(slack.makespan_s, 1.5);
  ASSERT_EQ(slack.record_slack_s.size(), 2u);
  ASSERT_EQ(slack.record_slack_s[0].size(), 2u);
  ASSERT_EQ(slack.record_slack_s[1].size(), 3u);

  // rank 0: the Compute feeding the message is critical; the Send's own
  // completion is not downstream of anything (slack = 1.5 - 1.1 = 0.4).
  EXPECT_NEAR(slack.record_slack_s[0][0], 0.0, 1e-9);
  EXPECT_NEAR(slack.record_slack_s[0][1], 0.4, 1e-9);
  // rank 1: early Compute ends 0.7 s before the elastic Recv would need it;
  // the Recv and the trailing Compute are critical.
  EXPECT_NEAR(slack.record_slack_s[1][0], 0.7, 1e-9);
  EXPECT_NEAR(slack.record_slack_s[1][1], 0.0, 1e-9);
  EXPECT_NEAR(slack.record_slack_s[1][2], 0.0, 1e-9);

  // Elastic seconds = Recv duration on rank 1, none on rank 0.
  EXPECT_NEAR(slack.rank_elastic_s[0], 0.0, 1e-9);
  EXPECT_NEAR(slack.rank_elastic_s[1], 0.7, 1e-9);
}

TEST(CriticalPath, SlackIsNonNegativeOnRealTraces) {
  for (const auto& w : {apps::make_ft(0.2), apps::make_cg(0.2)}) {
    const auto r = profiled_run(w);
    ASSERT_TRUE(r.profiler.has_value()) << w.name;
    const auto& slack = r.profiler->slack;
    EXPECT_GT(slack.makespan_s, 0.0);
    for (const auto& rank_slack : slack.record_slack_s) {
      for (double s : rank_slack) EXPECT_GE(s, 0.0) << w.name;
    }
  }
}

TEST(CriticalPath, RigidityClassification) {
  EXPECT_TRUE(profiler::is_rigid(trace::Cat::Compute));
  EXPECT_TRUE(profiler::is_rigid(trace::Cat::MemStall));
  EXPECT_TRUE(profiler::is_rigid(trace::Cat::Send));
  EXPECT_TRUE(profiler::is_rigid(trace::Cat::Collective));
  EXPECT_FALSE(profiler::is_rigid(trace::Cat::Wait));
  EXPECT_FALSE(profiler::is_rigid(trace::Cat::Recv));
}

// ---- energy attribution -----------------------------------------------------

TEST(Attribution, ScopedEnergyAccountsForTheWholeRun) {
  const auto r = profiled_run(apps::make_ft(0.2));
  ASSERT_TRUE(r.profiler.has_value());
  const auto& attr = r.profiler->attribution;

  // Per-rank sums add up to the total scoped energy, and scoped energy
  // accounts for (almost) all measured energy: FT ranks live inside trace
  // scopes nearly wall-to-wall.
  double rank_sum = 0;
  for (const auto& ra : attr.ranks) rank_sum += ra.joules;
  EXPECT_NEAR(rank_sum, attr.scoped_j, 1e-6 * attr.scoped_j);
  EXPECT_LE(attr.scoped_j, r.energy_j * (1 + 1e-9));
  EXPECT_GT(attr.scoped_j, 0.95 * r.energy_j);

  // Label aggregation: the FT all-to-all dominates energy.
  ASSERT_FALSE(attr.labels.empty());
  EXPECT_EQ(std::string(attr.labels.front().label), "mpi_alltoall");
  EXPECT_GT(attr.labels.front().joules, 0.5 * attr.scoped_j);

  // Cycles are only attributed where the CPU is frequency-sensitive:
  // memory stalls retire none.
  for (const auto& ra : attr.ranks) {
    EXPECT_DOUBLE_EQ(ra.at(trace::Cat::MemStall).cycles, 0.0);
    EXPECT_GT(ra.at(trace::Cat::Compute).cycles, 0.0);
  }
}

TEST(Attribution, MessageLogMatchesTransferCounters) {
  const auto r = profiled_run(apps::make_cg(0.1));
  ASSERT_TRUE(r.profiler.has_value());
  const auto& msgs = r.profiler->run.messages;
  ASSERT_FALSE(msgs.empty());
  for (const auto& m : msgs) {
    EXPECT_TRUE(m.complete());
    EXPECT_GE(m.t_delivered, m.t_send);
    EXPECT_GE(m.t_recv_done, m.t_delivered);
    EXPECT_GE(m.src, 0);
    EXPECT_GE(m.dst, 0);
    EXPECT_NE(m.src, m.dst);
  }
  EXPECT_EQ(static_cast<std::int64_t>(msgs.size()), r.messages);
}

// ---- the advisor ------------------------------------------------------------

TEST(Advisor, FtRederivesThePaperPhaseSchedule) {
  const auto r = profiled_run(apps::make_ft(0.2));
  ASSERT_TRUE(r.profiler.has_value());
  const auto schedule = profiler::advise(*r.profiler);

  // §5.3: gear down to 600 MHz around the MPI_Alltoall, 1400 elsewhere.
  EXPECT_EQ(schedule.mode, profiler::InternalSchedule::Mode::Phase);
  EXPECT_EQ(schedule.phase_label, "mpi_alltoall");
  EXPECT_EQ(schedule.high_mhz, 1400);
  EXPECT_EQ(schedule.low_mhz, 600);
  EXPECT_LE(schedule.predicted_delay_factor, 1.02);
  EXPECT_LT(schedule.predicted_energy_factor, 0.8);
  EXPECT_FALSE(schedule.rationale.empty());
}

TEST(Advisor, CgReproducesTheRankAsymmetry) {
  const auto r = profiled_run(apps::make_cg(0.2));
  ASSERT_TRUE(r.profiler.has_value());
  const auto schedule = profiler::advise(*r.profiler);

  // §5.4: the lower half waits less and must run faster than the upper half.
  ASSERT_EQ(schedule.mode, profiler::InternalSchedule::Mode::PerRank);
  ASSERT_EQ(schedule.rank_mhz.size(), 8u);
  const int lower_min = *std::min_element(schedule.rank_mhz.begin(),
                                          schedule.rank_mhz.begin() + 4);
  const int upper_max = *std::max_element(schedule.rank_mhz.begin() + 4,
                                          schedule.rank_mhz.end());
  EXPECT_GT(lower_min, upper_max);
}

TEST(Advisor, ScheduleExecutesThroughInternalHooks) {
  const auto w = apps::make_ft(0.2);
  const auto baseline = profiled_run(w);
  ASSERT_TRUE(baseline.profiler.has_value());
  const auto schedule = profiler::advise(*baseline.profiler);

  core::RunConfig advised_cfg;
  advised_cfg.seed = 1;
  advised_cfg.hooks = core::hooks_for(schedule);
  const auto advised = core::run_workload(w, advised_cfg);

  // The derived schedule must actually save energy within its delay bound.
  EXPECT_LT(advised.energy_j, 0.8 * baseline.energy_j);
  EXPECT_LT(advised.delay_s, baseline.delay_s * 1.02);

  // And the advisor's first-order predictions are in the right ballpark.
  EXPECT_NEAR(advised.energy_j / baseline.energy_j,
              schedule.predicted_energy_factor, 0.10);
  EXPECT_NEAR(advised.delay_s / baseline.delay_s, schedule.predicted_delay_factor,
              0.02);
}

TEST(Advisor, NoneScheduleYieldsEmptyHooks) {
  profiler::InternalSchedule schedule;  // Mode::None
  const auto hooks = core::hooks_for(schedule);
  EXPECT_FALSE(hooks.at_start);
  EXPECT_FALSE(hooks.before_marked_comm);
  EXPECT_FALSE(hooks.after_marked_comm);
}

// ---- zero perturbation ------------------------------------------------------

TEST(Profiler, ProfilingDoesNotPerturbTheRun) {
  core::RunConfig off;
  off.seed = 17;
  core::RunConfig on = off;
  on.profile = true;
  for (const auto& w : {apps::make_ft(0.2), apps::make_cg(0.1)}) {
    const auto a = core::run_workload(w, off);
    const auto b = core::run_workload(w, on);
    EXPECT_DOUBLE_EQ(a.delay_s, b.delay_s) << w.name;
    EXPECT_DOUBLE_EQ(a.energy_j, b.energy_j) << w.name;
    EXPECT_EQ(a.dvs_transitions, b.dvs_transitions) << w.name;
    EXPECT_EQ(a.messages, b.messages) << w.name;
  }
}

TEST(Profiler, CollectionOnlySkipsBatchAnalysis) {
  core::RunConfig cfg;
  cfg.seed = 1;
  cfg.profile = true;
  cfg.profile_analysis = false;
  const auto r = core::run_workload(apps::make_cg(0.1), cfg);

  // No ProfileResult — the DAG pass was skipped — but attribution still
  // happened during collection: the flat profile carries per-rank joules.
  EXPECT_FALSE(r.profiler.has_value());
  ASSERT_TRUE(r.profile.has_value());
  double scoped = 0;
  for (const auto& rp : r.profile->ranks) scoped += rp.energy_j;
  EXPECT_GT(scoped, 0.95 * r.energy_j);

  // And the run itself is still bit-identical to an unprofiled one.
  core::RunConfig off;
  off.seed = 1;
  const auto plain = core::run_workload(apps::make_cg(0.1), off);
  EXPECT_DOUBLE_EQ(plain.delay_s, r.delay_s);
  EXPECT_DOUBLE_EQ(plain.energy_j, r.energy_j);
}

TEST(Profiler, DisabledTracerLogsNoMessages) {
  sim::Engine e;
  trace::Tracer tracer(e, 2, /*enabled=*/false);
  EXPECT_EQ(tracer.log_send(0, 1, 7, 64), -1);
  tracer.log_delivered(-1);  // must no-op, not crash
  tracer.log_recv_done(-1);
  EXPECT_TRUE(tracer.messages().empty());
}
