// Campaign service tests: the strict JSON layer, the SpecRequest wire
// format and its cache-key identity, the crash-safe result cache (round
// trip, torn-tail recovery, index fast path), and the resilient
// CampaignService itself — admission control, deadlines, budgets,
// cancellation, retry-to-convergence under chaos, and the acceptance
// scenario: many concurrent clients against a fault-injecting service,
// every response structured, the cache never torn.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "campaign/result.hpp"
#include "fault/plan.hpp"
#include "service/cache.hpp"
#include "service/json.hpp"
#include "service/request.hpp"
#include "service/server.hpp"
#include "service/service.hpp"
#include "telemetry/metrics.hpp"

using namespace pcd;
using service::JsonValue;

namespace {

/// Fresh empty directory under the test temp root, wiped on destruction.
struct TempDir {
  std::string path;
  explicit TempDir(const char* tag) {
    path = testing::TempDir() + "pcd_service_" + tag + "_" +
           std::to_string(::getpid());
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
  }
  ~TempDir() { std::filesystem::remove_all(path); }
};

service::SpecRequest tiny_request(std::vector<std::string> workloads = {"EP"},
                                  std::uint64_t seed = 1) {
  service::SpecRequest req;
  req.workloads = std::move(workloads);
  req.scale = 0.01;
  req.trials = 1;
  req.seed = seed;
  req.strategies = {{"full", 0, ""}};
  return req;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void append_bytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::app);
  out << bytes;
}

}  // namespace

// ---- strict JSON ----------------------------------------------------------

TEST(Json, ParsesAndRoundTripsNestedDocuments) {
  const std::string text =
      "{\"a\":[1,2.5,-3e2,true,false,null],\"b\":{\"nested\":\"\\u00e9\\n\"},"
      "\"empty\":[],\"s\":\"tab\\tquote\\\"\"}";
  auto v = service::json_parse(text);
  ASSERT_TRUE(v.has_value());
  ASSERT_TRUE(v->is_object());
  const JsonValue* a = v->find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  EXPECT_EQ(a->items().size(), 6u);
  EXPECT_DOUBLE_EQ(a->items()[2].as_number(), -300.0);
  EXPECT_EQ(v->find("b")->find("nested")->as_string(), "\xc3\xa9\n");

  // write() -> parse() is the identity on the DOM (insertion order kept).
  auto again = service::json_parse(v->write());
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(again->write(), v->write());
}

TEST(Json, SurrogatePairsDecodeToUtf8) {
  auto v = service::json_parse("\"\\ud83d\\ude00\"");  // U+1F600
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->as_string(), "\xf0\x9f\x98\x80");
}

TEST(Json, StrictModeRejectsMalformedDocuments) {
  const char* bad[] = {
      "",                      // empty input
      "{\"a\":1} trailing",    // bytes after the document
      "{\"a\":01}",            // leading zero
      "{\"a\":.5}",            // bare fraction
      "{\"a\":+1}",            // explicit plus
      "{\"a\":1,}",            // trailing comma
      "{'a':1}",               // single quotes
      "{\"a\":nul}",           // truncated literal
      "\"\\ud800\"",           // lone high surrogate
      "\"\\udc00\"",           // lone low surrogate
      "\"\\x41\"",             // invalid escape
      "\"unterminated",        // EOF inside string
      "[1,2",                  // EOF inside array
      "\"ctrl \x01 char\"",    // raw control character
      "NaN",                   // not a JSON number
  };
  for (const char* text : bad) {
    service::JsonError err;
    EXPECT_FALSE(service::json_parse(text, &err).has_value())
        << "accepted: " << text;
    EXPECT_FALSE(err.message.empty());
  }
}

TEST(Json, HexDoublesRoundTripExactly) {
  const double values[] = {0.1, 1.0 / 3.0, -0.0, 1e300, 5e-324, 3.14159,
                           123456789.123456789, -2.5e-10};
  for (double d : values) {
    double back = 0;
    ASSERT_TRUE(service::parse_hex_double(service::hex_double(d), &back));
    EXPECT_EQ(std::memcmp(&d, &back, sizeof d), 0) << d;
  }
  double out = 0;
  EXPECT_FALSE(service::parse_hex_double("not a number", &out));
  EXPECT_FALSE(service::parse_hex_double("0x1p1 junk", &out));
}

// ---- SpecRequest wire format ----------------------------------------------

TEST(SpecRequest, FromJsonAppliesDefaultsAndRoundTrips) {
  auto doc = service::json_parse(
      "{\"op\":\"submit\",\"workloads\":[\"FT\",\"CG\"],\"trials\":3,"
      "\"seed\":42,\"strategies\":[{\"static_mhz\":1400},"
      "{\"daemon\":\"v1.2.1\"}],\"deadline_s\":5}");
  ASSERT_TRUE(doc.has_value());
  std::string err;
  auto req = service::SpecRequest::from_json(*doc, &err);
  ASSERT_TRUE(req.has_value()) << err;
  EXPECT_EQ(req->workloads.size(), 2u);
  EXPECT_DOUBLE_EQ(req->scale, 0.02);  // wire default
  EXPECT_EQ(req->trials, 3);
  EXPECT_EQ(req->seed, 42u);
  EXPECT_TRUE(req->digests);
  ASSERT_EQ(req->strategies.size(), 2u);
  EXPECT_EQ(req->strategies[0].label, "1400");
  EXPECT_EQ(req->strategies[1].label, "auto-v1.2.1");
  EXPECT_DOUBLE_EQ(req->deadline_s, 5.0);

  // to_json -> from_json is the identity on the parsed form.
  std::string err2;
  auto again = service::SpecRequest::from_json(req->to_json(), &err2);
  ASSERT_TRUE(again.has_value()) << err2;
  EXPECT_EQ(again->to_json().write(), req->to_json().write());
}

TEST(SpecRequest, FromJsonRejectsBadFields) {
  const char* bad[] = {
      "{\"scale\":0}",
      "{\"scale\":-1}",
      "{\"trials\":0}",
      "{\"deadline_s\":-1}",
      "{\"strategies\":[{\"daemon\":\"v9\"}]}",
      "{\"strategies\":[{\"daemon\":\"v1.1\",\"static_mhz\":600}]}",
      "{\"strategies\":[42]}",
      "{\"workloads\":\"FT\"}",
  };
  for (const char* text : bad) {
    auto doc = service::json_parse(text);
    ASSERT_TRUE(doc.has_value()) << text;
    std::string err;
    EXPECT_FALSE(service::SpecRequest::from_json(*doc, &err).has_value())
        << "accepted: " << text;
    EXPECT_FALSE(err.empty());
  }
}

TEST(SpecRequest, ToSpecResolvesWorkloadsAndFailsStructurally) {
  auto req = tiny_request({"FT", "CG"});
  req.strategies = {{"1400", 1400, ""}, {"auto", 0, "v1.2.1"}};
  std::string err;
  auto spec = req.to_spec(&err);
  ASSERT_TRUE(spec.has_value()) << err;
  EXPECT_EQ(spec->total_runs(), 4u);  // 2 workloads x 2 strategies x 1 trial

  req.workloads = {"FT", "NOPE"};
  EXPECT_FALSE(req.to_spec(&err).has_value());
  EXPECT_NE(err.find("NOPE"), std::string::npos);

  req.workloads = {};
  EXPECT_FALSE(req.to_spec(&err).has_value());
}

TEST(SpecRequest, CellKeyIsIndependentOfRequestShapeAndRobustnessKnobs) {
  auto a = tiny_request({"FT"});
  auto b = tiny_request({"FT", "CG", "EP"});  // same cell, bigger request
  b.deadline_s = 2.0;                          // knobs must not change identity
  b.budget_s = 10.0;
  EXPECT_EQ(a.cell_key("FT", "full"), b.cell_key("FT", "full"));

  // Anything that changes what the cell computes changes the key.
  auto c = tiny_request({"FT"});
  c.seed = 2;
  EXPECT_NE(a.cell_key("FT", "full"), c.cell_key("FT", "full"));
  auto d = tiny_request({"FT"});
  d.scale = 0.02;
  EXPECT_NE(a.cell_key("FT", "full"), d.cell_key("FT", "full"));
  EXPECT_NE(a.cell_key("FT", "full"), a.cell_key("FT", "1400"));
  EXPECT_NE(a.cell_key("FT", "full"), a.cell_key("CG", "full"));
}

// ---- result cache ----------------------------------------------------------

namespace {

campaign::CellResult sample_cell(int index, const char* workload) {
  campaign::CellResult cell;
  cell.index = static_cast<std::size_t>(index);
  cell.workload = workload;
  cell.labels = {"1400"};
  cell.numbers = {1400.0};
  cell.numeric = {true};
  cell.delay = campaign::Summary::of({1.125, 2.5, 0.1});
  cell.energy = campaign::Summary::of({10.0 / 3.0, 7.25, 5e-3});
  cell.digest_root = 0xdeadbeefcafef00dULL;
  cell.has_digest = true;
  cell.runs = 3;
  cell.failures = 0;
  cell.result.workload = workload;
  cell.result.delay_s = 1.125;
  cell.result.energy_j = 0.1 + static_cast<double>(index);  // inexact on purpose
  cell.result.energy_acpi_j = 3.0;
  cell.result.energy_baytech_j = 3.5;
  cell.result.mean_utilization = 2.0 / 3.0;
  cell.result.dvs_transitions = 17;
  cell.result.net_collisions = 4;
  cell.result.messages = 1234;
  return cell;
}

}  // namespace

TEST(ResultCache, EncodeDecodeIsExact) {
  const auto cell = sample_cell(3, "FT");
  campaign::CellResult back;
  ASSERT_TRUE(service::ResultCache::decode(service::ResultCache::encode(cell),
                                           &back));
  EXPECT_EQ(back.index, cell.index);
  EXPECT_EQ(back.workload, cell.workload);
  EXPECT_EQ(back.labels, cell.labels);
  EXPECT_EQ(back.digest_root, cell.digest_root);
  EXPECT_TRUE(back.has_digest);
  EXPECT_EQ(back.runs, 3);
  // Hex-float doubles round-trip bit-exactly, not just approximately.
  EXPECT_EQ(back.delay.median, cell.delay.median);
  EXPECT_EQ(back.energy.mean, cell.energy.mean);
  EXPECT_EQ(back.result.energy_j, cell.result.energy_j);
  EXPECT_EQ(back.result.mean_utilization, cell.result.mean_utilization);
  EXPECT_EQ(back.result.dvs_transitions, cell.result.dvs_transitions);
  EXPECT_EQ(back.result.messages, cell.result.messages);

  campaign::CellResult ignored;
  EXPECT_FALSE(service::ResultCache::decode("not json", &ignored));
  EXPECT_FALSE(service::ResultCache::decode("{\"workload\":\"FT\"}", &ignored));
}

TEST(ResultCache, PersistsAndReopensViaIndexFastPath) {
  TempDir dir("reopen");
  {
    service::ResultCache cache(dir.path);
    cache.insert(0x1111, sample_cell(0, "FT"));
    cache.insert(0x2222, sample_cell(1, "CG"));
    cache.insert(0x1111, sample_cell(2, "FT"));  // overwrite: last wins
    EXPECT_EQ(cache.stats().inserts, 3);
    EXPECT_EQ(cache.stats().entries, 2);
    cache.persist_index();
  }
  {
    service::ResultCache cache(dir.path);
    const auto st = cache.stats();
    EXPECT_TRUE(st.index_used);
    EXPECT_EQ(st.recovered, 2);
    EXPECT_EQ(st.corrupt, 0);
    EXPECT_EQ(st.torn_bytes, 0);
    auto hit = cache.lookup(0x1111);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->index, 2u);  // the overwrite survived recovery
    EXPECT_FALSE(cache.lookup(0x9999).has_value());
    EXPECT_DOUBLE_EQ(cache.stats().hit_ratio(), 0.5);
  }
}

TEST(ResultCache, TornTailIsTruncatedAtRecovery) {
  TempDir dir("torn");
  const std::string log = dir.path + "/results.log";
  {
    service::ResultCache cache(dir.path);
    cache.insert(0xaaaa, sample_cell(0, "FT"));
    cache.insert(0xbbbb, sample_cell(1, "CG"));
  }
  const std::string intact = slurp(log);
  // A kill -9 mid-append leaves a partial record: header + half a payload.
  append_bytes(log, "PCDC1 000000000000cccc 999 0123456789abcdef\n{\"trunc");
  {
    service::ResultCache cache(dir.path);
    const auto st = cache.stats();
    EXPECT_FALSE(st.index_used);  // log grew past what any index described
    EXPECT_EQ(st.recovered, 2);
    EXPECT_GT(st.torn_bytes, 0);
    EXPECT_TRUE(cache.lookup(0xaaaa).has_value());
    EXPECT_FALSE(cache.lookup(0xcccc).has_value());
  }
  // Recovery physically truncated the file back to the verified prefix.
  EXPECT_EQ(slurp(log), intact);
}

TEST(ResultCache, CorruptPayloadCountsAndStopsTheScan) {
  TempDir dir("corrupt");
  const std::string log = dir.path + "/results.log";
  {
    service::ResultCache cache(dir.path);
    cache.insert(0xaaaa, sample_cell(0, "FT"));
    cache.insert(0xbbbb, sample_cell(1, "CG"));
  }
  // Flip one payload byte of the LAST record: framed, but digest-mismatched.
  std::string bytes = slurp(log);
  const std::size_t second = bytes.find("PCDC1", 5);
  ASSERT_NE(second, std::string::npos);
  const std::size_t victim = bytes.find("workload", second);
  ASSERT_NE(victim, std::string::npos);
  bytes[victim] ^= 0x20;
  { std::ofstream out(log, std::ios::binary | std::ios::trunc); out << bytes; }
  {
    service::ResultCache cache(dir.path);
    const auto st = cache.stats();
    EXPECT_EQ(st.recovered, 1);
    EXPECT_EQ(st.corrupt, 1);
    EXPECT_GT(st.torn_bytes, 0);
    EXPECT_TRUE(cache.lookup(0xaaaa).has_value());
    EXPECT_FALSE(cache.lookup(0xbbbb).has_value());  // zero corrupted entries served
  }
}

// ---- CampaignService: cache, admission, deadlines, cancellation ------------

TEST(CampaignService, ColdThenWarmServesFromCacheWithIdenticalFingerprint) {
  TempDir dir("warm");
  service::ServiceOptions opts;
  opts.workers = 1;
  opts.campaign_threads = 2;
  opts.cache_dir = dir.path;
  telemetry::MetricsRegistry metrics;
  opts.metrics = &metrics;
  service::CampaignService svc(opts);

  auto req = tiny_request({"EP", "IS"});
  const auto cold = svc.execute(req);
  ASSERT_EQ(cold.status, service::Status::Ok) << cold.reason;
  EXPECT_EQ(cold.cache_hits, 0);
  EXPECT_EQ(cold.cache_misses, 2);
  ASSERT_EQ(cold.result.cells.size(), 2u);
  EXPECT_TRUE(cold.result.cells[0].has_digest);

  const auto warm = svc.execute(req);
  ASSERT_EQ(warm.status, service::Status::Ok);
  EXPECT_EQ(warm.cache_hits, 2);
  EXPECT_EQ(warm.cache_misses, 0);
  EXPECT_EQ(warm.fingerprint, cold.fingerprint);
  EXPECT_EQ(warm.result.tsv(), cold.result.tsv());

  // A subset request re-runs nothing: cell identity ignores request shape.
  const auto subset = svc.execute(tiny_request({"IS"}));
  EXPECT_EQ(subset.cache_hits, 1);
  EXPECT_EQ(subset.cache_misses, 0);

  EXPECT_DOUBLE_EQ(
      metrics.counter("campaign_service_requests_total").value(), 3.0);
  EXPECT_DOUBLE_EQ(
      metrics.counter("campaign_service_cache_hits_total").value(), 3.0);
  EXPECT_DOUBLE_EQ(
      metrics.counter("campaign_service_cache_misses_total").value(), 2.0);
  EXPECT_DOUBLE_EQ(metrics.gauge("campaign_service_queue_depth").value(), 0.0);
}

TEST(CampaignService, ShedsWhenTheAdmissionQueueIsFull) {
  service::ServiceOptions opts;
  opts.workers = 1;
  opts.max_queue = 1;
  opts.campaign_threads = 1;
  telemetry::MetricsRegistry metrics;
  opts.metrics = &metrics;
  service::CampaignService svc(opts);

  // Occupy the worker, then the single queue slot; the third submission
  // must shed immediately with a structured rejection.
  auto t1 = svc.submit(tiny_request({"FT", "CG"}, 11));
  for (int i = 0; i < 200 && svc.queue_depth() > 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_EQ(svc.queue_depth(), 0u);  // worker picked up t1
  auto t2 = svc.submit(tiny_request({"EP"}, 12));
  auto t3 = svc.submit(tiny_request({"IS"}, 13));

  const auto r3 = svc.wait(t3);
  EXPECT_EQ(r3.status, service::Status::Rejected);
  EXPECT_NE(r3.reason.find("queue full"), std::string::npos);
  EXPECT_GT(r3.retry_after_s, 0.0);

  EXPECT_EQ(svc.wait(t1).status, service::Status::Ok);
  EXPECT_EQ(svc.wait(t2).status, service::Status::Ok);
  EXPECT_DOUBLE_EQ(metrics.counter("campaign_service_shed_total").value(), 1.0);

  // A ticket is one-shot: the second wait is a structured error.
  EXPECT_EQ(svc.wait(t1).status, service::Status::Error);
}

TEST(CampaignService, DeadlineExceededIsAStructuredCellFailure) {
  service::ServiceOptions opts;
  opts.workers = 1;
  opts.max_retries = 0;  // the deadline will not get better by itself
  service::CampaignService svc(opts);

  auto req = tiny_request({"CG"});
  req.scale = 0.5;           // long enough to cross an event-batch boundary
  req.deadline_s = 1e-4;     // and far too tight to finish
  const auto r = svc.execute(req);
  ASSERT_EQ(r.status, service::Status::Ok);  // the *request* succeeded
  ASSERT_EQ(r.result.cells.size(), 1u);
  const auto& cell = r.result.cells[0];
  EXPECT_GT(cell.failures, 0);
  bool mentions_deadline = false;
  for (const auto& e : cell.errors) {
    if (e.find("deadline exceeded") != std::string::npos) {
      mentions_deadline = true;
    }
  }
  EXPECT_TRUE(mentions_deadline);
}

TEST(CampaignService, BudgetExhaustionFailsRemainingCellsWithoutRunningThem) {
  // The budget is checked between rounds, so chaos forces a second round:
  // attempt 0 runs under an injected crash (transient, retried), and by the
  // time the retry round would start the budget is long gone — every
  // pending cell fails synthetically without running.
  service::ServiceOptions opts;
  opts.workers = 1;
  opts.max_retries = 3;
  opts.retry_backoff_s = 0.001;
  opts.chaos.probability = 1.0;
  opts.chaos.plan.events.push_back(fault::node_crash(0.05, 0));
  service::CampaignService svc(opts);

  auto req = tiny_request({"FT", "CG", "EP", "IS"});
  req.budget_s = 1e-4;  // exhausted during the first round
  const auto r = svc.execute(req);
  ASSERT_EQ(r.status, service::Status::Ok);
  EXPECT_NE(r.reason.find("budget"), std::string::npos);
  ASSERT_EQ(r.result.cells.size(), 4u);
  int budget_failures = 0;
  for (const auto& cell : r.result.cells) {
    for (const auto& e : cell.errors) {
      if (e.find("budget exhausted") != std::string::npos) ++budget_failures;
    }
  }
  EXPECT_GT(budget_failures, 0);
}

TEST(CampaignService, CancelCompletesQueuedAndRunningRequests) {
  service::ServiceOptions opts;
  opts.workers = 1;
  opts.campaign_threads = 1;
  service::CampaignService svc(opts);

  auto slow = tiny_request({"CG"}, 21);
  slow.scale = 1.0;  // ~100 ms: a wide window to land the cancel in
  auto running = svc.submit(slow);
  for (int i = 0; i < 200 && svc.queue_depth() > 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  auto queued = svc.submit(tiny_request({"EP", "IS"}, 22));
  svc.cancel(queued);
  svc.cancel(running);

  const auto rq = svc.wait(queued);
  EXPECT_EQ(rq.status, service::Status::Cancelled);
  EXPECT_NE(rq.reason.find("cancelled"), std::string::npos);
  const auto rr = svc.wait(running);
  EXPECT_EQ(rr.status, service::Status::Cancelled);
  // A cell the cancel caught mid-run carries the structured abort.
  for (const auto& cell : rr.result.cells) {
    if (cell.failures > 0) {
      EXPECT_NE(cell.result.failure.find("cancelled"), std::string::npos);
    }
  }
}

TEST(CampaignService, LenientExpansionPropagatesConfigIssues) {
  service::ServiceOptions opts;
  opts.workers = 1;
  service::CampaignService svc(opts);

  auto req = tiny_request({"EP"});
  req.slice_s = -0.5;  // passes the wire check, fails RunConfig::validate()
  const auto r = svc.execute(req);
  ASSERT_EQ(r.status, service::Status::Ok);
  ASSERT_EQ(r.result.cells.size(), 1u);
  const auto& cell = r.result.cells[0];
  EXPECT_GT(cell.failures, 0);
  ASSERT_FALSE(cell.config_issues.empty());
  EXPECT_NE(cell.config_issues[0].field.find("slice_s"), std::string::npos);
  EXPECT_NE(cell.config_issues[0].message.find("positive"), std::string::npos);
}

TEST(CampaignService, UnknownWorkloadIsARequestError) {
  service::CampaignService svc{service::ServiceOptions{}};
  auto req = tiny_request({"BOGUS"});
  const auto r = svc.execute(req);
  EXPECT_EQ(r.status, service::Status::Error);
  EXPECT_NE(r.reason.find("BOGUS"), std::string::npos);
}

TEST(CampaignService, DrainRejectsNewWorkAndFinishesAccepted) {
  service::ServiceOptions opts;
  opts.workers = 2;
  service::CampaignService svc(opts);
  auto accepted = svc.submit(tiny_request({"EP"}, 31));
  svc.drain();
  EXPECT_EQ(svc.wait(accepted).status, service::Status::Ok);
  const auto late = svc.execute(tiny_request({"IS"}, 32));
  EXPECT_EQ(late.status, service::Status::Rejected);
  EXPECT_NE(late.reason.find("draining"), std::string::npos);
}

// ---- retry-to-convergence under chaos --------------------------------------

TEST(CampaignService, ChaosRetriesConvergeToTheCleanDigestRoot) {
  auto req = tiny_request({"EP", "IS"}, 7);

  service::CampaignService clean{service::ServiceOptions{}};
  const auto baseline = clean.execute(req);
  ASSERT_EQ(baseline.status, service::Status::Ok);
  ASSERT_TRUE(baseline.result.cells[0].has_digest);

  service::ServiceOptions opts;
  opts.workers = 1;
  opts.max_retries = 2;
  opts.retry_backoff_s = 0.001;  // keep the test fast
  opts.chaos.probability = 1.0;  // every first attempt runs under the plan
  opts.chaos.plan.events.push_back(fault::node_crash(0.05, 0));
  service::CampaignService chaotic(opts);
  const auto survived = chaotic.execute(req);
  ASSERT_EQ(survived.status, service::Status::Ok) << survived.reason;
  EXPECT_GT(survived.retries, 0);
  EXPECT_EQ(survived.fingerprint, baseline.fingerprint);
  for (std::size_t i = 0; i < survived.result.cells.size(); ++i) {
    EXPECT_EQ(survived.result.cells[i].digest_root,
              baseline.result.cells[i].digest_root);
    EXPECT_EQ(survived.result.cells[i].failures, 0);
  }
}

TEST(CampaignService, ChaosTouchedResultsAreNeverCached) {
  TempDir dir("chaoscache");
  service::ServiceOptions opts;
  opts.workers = 1;
  opts.max_retries = 0;  // the chaos attempt is the final word...
  opts.retry_backoff_s = 0.001;
  opts.cache_dir = dir.path;
  opts.chaos.probability = 1.0;
  opts.chaos.plan.events.push_back(fault::node_crash(0.05, 0));
  service::CampaignService svc(opts);
  const auto r = svc.execute(tiny_request({"EP"}, 8));
  ASSERT_EQ(r.status, service::Status::Ok);
  EXPECT_GT(r.result.cells[0].failures, 0);  // ...and it failed
  EXPECT_EQ(svc.cache_stats().inserts, 0);   // but was not persisted
}

// ---- acceptance: concurrent clients, chaos on, cache never torn ------------

TEST(CampaignService, ConcurrentChaoticClientsAllGetStructuredResponses) {
  TempDir dir("hammer");
  auto req_a = tiny_request({"EP"}, 91);
  auto req_b = tiny_request({"IS"}, 92);

  // Clean fingerprints first, from an undisturbed service.
  std::uint64_t clean_a = 0, clean_b = 0;
  {
    service::CampaignService clean{service::ServiceOptions{}};
    clean_a = clean.execute(req_a).fingerprint;
    clean_b = clean.execute(req_b).fingerprint;
  }

  service::ServiceOptions opts;
  opts.workers = 4;
  opts.campaign_threads = 1;
  opts.max_queue = 64;  // admission off the table: this test is about retries
  opts.max_retries = 3;
  opts.retry_backoff_s = 0.001;
  opts.cache_dir = dir.path;
  opts.chaos.probability = 0.5;
  opts.chaos.max_attempt = 2;
  opts.chaos.plan.events.push_back(fault::node_crash(0.05, 0));
  service::CampaignService svc(opts);

  constexpr int kClients = 10;
  std::vector<service::Response> responses(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&, i] {
      auto req = (i % 2 == 0) ? req_a : req_b;
      if (i == kClients - 1) req.workloads = {"BOGUS"};  // one bad client
      responses[static_cast<std::size_t>(i)] = svc.execute(req);
    });
  }
  for (auto& t : clients) t.join();

  for (int i = 0; i < kClients; ++i) {
    const auto& r = responses[static_cast<std::size_t>(i)];
    if (i == kClients - 1) {
      EXPECT_EQ(r.status, service::Status::Error);
      EXPECT_FALSE(r.reason.empty());
      continue;
    }
    ASSERT_EQ(r.status, service::Status::Ok) << r.reason;
    // Chaos was injected and retried away: every surviving response matches
    // the clean run bit-for-bit.
    EXPECT_EQ(r.fingerprint, i % 2 == 0 ? clean_a : clean_b);
    for (const auto& cell : r.result.cells) EXPECT_EQ(cell.failures, 0);
  }

  svc.drain();

  // The cache survived the stampede: reopen recovers every entry, zero
  // corrupt, and each one decodes.
  service::ResultCache reopened(dir.path);
  const auto st = reopened.stats();
  EXPECT_EQ(st.corrupt, 0);
  EXPECT_EQ(st.torn_bytes, 0);
  EXPECT_EQ(st.recovered, 2);  // one clean cell per distinct request
  EXPECT_TRUE(reopened.lookup(req_a.cell_key("EP", "full")).has_value());
  EXPECT_TRUE(reopened.lookup(req_b.cell_key("IS", "full")).has_value());
}

// ---- the wire: AF_UNIX line-delimited JSON ---------------------------------

namespace {

/// Minimal blocking client for the smoke test: one line out, one line back.
std::string round_trip_line(const std::string& path, const std::string& line) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) return "";
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return "";
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return "";
  }
  const std::string out = line + "\n";
  if (::send(fd, out.data(), out.size(), 0) !=
      static_cast<ssize_t>(out.size())) {
    ::close(fd);
    return "";
  }
  std::string reply;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n <= 0) break;
    reply.append(chunk, static_cast<std::size_t>(n));
    const std::size_t nl = reply.find('\n');
    if (nl != std::string::npos) {
      reply.resize(nl);
      break;
    }
  }
  ::close(fd);
  return reply;
}

}  // namespace

TEST(SocketServer, ServesPingStatsSubmitAndShutdownOverTheSocket) {
  const std::string sock = testing::TempDir() + "pcd_test_" +
                           std::to_string(::getpid()) + ".sock";
  service::ServiceOptions opts;
  opts.workers = 2;
  service::CampaignService svc(opts);
  service::SocketServer server(svc, sock);
  std::atomic<bool> shutdown_seen{false};
  server.on_shutdown([&] { shutdown_seen = true; });
  std::string err;
  ASSERT_TRUE(server.start(&err)) << err;

  auto ping = service::json_parse(round_trip_line(sock, "{\"op\":\"ping\"}"));
  ASSERT_TRUE(ping.has_value());
  EXPECT_TRUE(ping->bool_or("ok", false));

  auto submit = service::json_parse(round_trip_line(
      sock,
      "{\"op\":\"submit\",\"workloads\":[\"EP\"],\"scale\":0.01,"
      "\"strategies\":[{\"static_mhz\":1400}]}"));
  ASSERT_TRUE(submit.has_value());
  EXPECT_EQ(submit->str_or("status", "?"), "ok");
  EXPECT_EQ(submit->int_or("cells", 0), 1);
  EXPECT_EQ(submit->str_or("fingerprint", "").size(), 16u);
  const JsonValue* tsv = submit->find("tsv");
  ASSERT_NE(tsv, nullptr);
  EXPECT_NE(tsv->as_string().find("EP"), std::string::npos);

  // Malformed and unknown requests get structured error envelopes.
  auto bad = service::json_parse(round_trip_line(sock, "{\"op\":\"submit\","));
  ASSERT_TRUE(bad.has_value());
  EXPECT_EQ(bad->str_or("status", "?"), "error");
  auto unknown = service::json_parse(round_trip_line(sock, "{\"op\":\"warp\"}"));
  ASSERT_TRUE(unknown.has_value());
  EXPECT_EQ(unknown->str_or("status", "?"), "error");

  auto stats = service::json_parse(round_trip_line(sock, "{\"op\":\"stats\"}"));
  ASSERT_TRUE(stats.has_value());
  EXPECT_TRUE(stats->bool_or("ok", false));
  const JsonValue* cache = stats->find("cache");
  ASSERT_NE(cache, nullptr);
  EXPECT_EQ(cache->int_or("misses", -1), 1);

  auto bye = service::json_parse(round_trip_line(sock, "{\"op\":\"shutdown\"}"));
  ASSERT_TRUE(bye.has_value());
  EXPECT_TRUE(bye->bool_or("ok", false));
  for (int i = 0; i < 200 && !shutdown_seen; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(shutdown_seen);
  server.stop();
  svc.drain();
  EXPECT_FALSE(std::filesystem::exists(sock));
}

TEST(SocketServer, ResponseJsonCarriesTheRejectionEnvelope) {
  service::Response r;
  r.status = service::Status::Rejected;
  r.reason = "admission queue full (8 waiting); shedding load";
  r.retry_after_s = 2.5;
  const JsonValue v = service::response_to_json(r);
  EXPECT_EQ(v.str_or("status", "?"), "rejected");
  EXPECT_DOUBLE_EQ(v.num_or("retry_after_s", 0), 2.5);
  EXPECT_NE(v.str_or("reason", "").find("queue full"), std::string::npos);
  // Strict both ways: the envelope itself re-parses.
  EXPECT_TRUE(service::json_parse(v.write()).has_value());
}
