// Sharded parallel event engine (DESIGN.md §3.14): ShardPlan arithmetic,
// ShardedEngine window/barrier mechanics, the cross-shard MPI transport,
// digest merging, the sharded run_workload path, and the determinism
// guarantees the acceptance criteria name — repeat-identical multi-shard
// runs, a 1-shard path bit-identical to the classic engine, and campaign
// fingerprints that stay reproducible with shards in the base config.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "apps/npb.hpp"
#include "campaign/runner.hpp"
#include "campaign/spec.hpp"
#include "core/runner.hpp"
#include "core/strategies.hpp"
#include "machine/partition.hpp"
#include "mpi/sharded_comm.hpp"
#include "sim/process.hpp"
#include "sim/sharded.hpp"
#include "telemetry/determinism.hpp"
#include "telemetry/export.hpp"

namespace pcd {
namespace {

constexpr double kScale = 0.02;

// --- ShardPlan --------------------------------------------------------------

TEST(ShardPlan, ContiguousSpreadsRemainderOverLeadingShards) {
  const auto plan = machine::ShardPlan::contiguous(10, 4);
  ASSERT_EQ(plan.shards(), 4);
  EXPECT_EQ(plan.total(), 10);
  EXPECT_EQ(plan.count(0), 3);
  EXPECT_EQ(plan.count(1), 3);
  EXPECT_EQ(plan.count(2), 2);
  EXPECT_EQ(plan.count(3), 2);
  for (int g = 0; g < plan.total(); ++g) {
    EXPECT_EQ(plan.global_of(plan.shard_of(g), plan.local_of(g)), g);
  }
  EXPECT_EQ(plan.shard_of(0), 0);
  EXPECT_EQ(plan.shard_of(9), 3);
  EXPECT_EQ(plan.local_of(6), 0);  // first rank of shard 2
}

TEST(ShardPlan, ClampsShardsToTotalAndRejectsNonPositive) {
  const auto plan = machine::ShardPlan::contiguous(3, 8);
  EXPECT_EQ(plan.shards(), 3);
  for (int s = 0; s < 3; ++s) EXPECT_EQ(plan.count(s), 1);
  EXPECT_THROW(machine::ShardPlan::contiguous(0, 2), std::invalid_argument);
  EXPECT_THROW(machine::ShardPlan::contiguous(4, 0), std::invalid_argument);
}

TEST(ShardPlan, ShardSeedsAreDecorrelatedAndStable) {
  EXPECT_EQ(machine::shard_seed(7, 0), machine::shard_seed(7, 0));
  EXPECT_NE(machine::shard_seed(7, 0), machine::shard_seed(7, 1));
  EXPECT_NE(machine::shard_seed(7, 0), machine::shard_seed(8, 0));
}

// --- ShardedEngine ----------------------------------------------------------

TEST(ShardedEngine, RejectsBadConstructionAndShortPosts) {
  EXPECT_THROW(sim::ShardedEngine(0, 1000), std::invalid_argument);
  EXPECT_THROW(sim::ShardedEngine(2, 0), std::invalid_argument);

  sim::ShardedEngine se(2, 1000);
  // Driver-side seeding at >= lookahead is fine; anything shorter is a
  // protocol bug and must throw instead of silently breaking determinism.
  EXPECT_NO_THROW(se.post(0, 1, 1000, [] {}));
  EXPECT_THROW(se.post(0, 1, 999, [] {}), std::logic_error);
}

TEST(ShardedEngine, DeliversCrossShardPostsAtTheStampedTime) {
  sim::ShardedEngine se(2, 1000);
  sim::SimTime delivered_at = 0;
  se.shard(0).schedule_at(500, [&] {
    se.post(0, 1, 500 + 1000, [&] { delivered_at = se.shard(1).now(); });
  });
  const auto stats = se.run();
  EXPECT_EQ(delivered_at, 1500);
  EXPECT_EQ(stats.posts, 1u);
  EXPECT_GE(stats.windows, 1u);
}

TEST(ShardedEngine, ParallelAndSerialExecutionAreIdentical) {
  // A little cross-shard ping-pong, run once on worker threads and once on
  // the calling thread: both orderings must match event-for-event.
  auto run_pingpong = [](bool parallel) {
    sim::ShardedEngineOptions opt;
    opt.parallel = parallel;
    sim::ShardedEngine se(4, 100, opt);
    // One log per shard: each is written only from its own shard's events,
    // so the comparison checks the real guarantee — every shard's event
    // sequence is identical regardless of how windows are executed.
    std::array<std::vector<sim::SimTime>, 4> logs;
    struct Hop {
      sim::ShardedEngine* se;
      std::array<std::vector<sim::SimTime>, 4>* logs;
      void operator()(int from, int hops) const {
        (*logs)[from].push_back(se->shard(from).now() * 10 + from);
        if (hops == 0) return;
        const int to = (from + 1) % 4;
        auto self = *this;
        se->post(from, to, se->shard(from).now() + 100,
                 [self, to, hops] { self(to, hops - 1); });
      }
    };
    for (int s = 0; s < 4; ++s) {
      se.shard(s).schedule_at(s * 7, [&se, &logs, s] {
        Hop{&se, &logs}(s, 6);
      });
    }
    se.run();
    return logs;
  };
  EXPECT_EQ(run_pingpong(false), run_pingpong(true));
}

TEST(ShardedEngine, BarrierCallbackCanStopTheRun) {
  sim::ShardedEngine se(2, 1000);
  int fired = 0;
  for (sim::SimTime t = 0; t < 10000; t += 1000) {
    se.shard(0).schedule_at(t, [&] { ++fired; });
  }
  int barriers = 0;
  se.run(sim::ShardedEngine::kNoLimit, [&](sim::SimTime) {
    return ++barriers < 2;  // stop after the second barrier
  });
  EXPECT_LT(fired, 10);
  EXPECT_EQ(barriers, 2);
}

// --- merge_digests ----------------------------------------------------------

TEST(MergeDigests, SinglePartIsIdentity) {
  telemetry::RunDigest d;
  d.streams[0].fold(1);
  d.streams[3].fold(2);
  d.checkpoints.push_back({});
  const auto m = telemetry::merge_digests({d});
  EXPECT_EQ(m.root(), d.root());
  EXPECT_EQ(m.checkpoints.size(), 1u);
}

TEST(MergeDigests, MultiPartFoldsInShardOrder) {
  telemetry::RunDigest a, b;
  a.streams[0].fold(1);
  b.streams[0].fold(2);
  const auto ab = telemetry::merge_digests({a, b});
  const auto ba = telemetry::merge_digests({b, a});
  EXPECT_NE(ab.root(), ba.root());  // order-sensitive
  EXPECT_EQ(ab.root(), telemetry::merge_digests({a, b}).root());
  EXPECT_EQ(ab.streams[0].count, a.streams[0].count + b.streams[0].count);
}

// --- cross-shard MPI transport ----------------------------------------------

struct ShardedMpiFixture {
  sim::ShardedEngine engines;
  machine::ShardPlan plan;
  std::vector<std::unique_ptr<machine::Cluster>> clusters;
  std::unique_ptr<mpi::ShardedComm> comm;

  explicit ShardedMpiFixture(int ranks, int shards)
      : engines(shards, /*lookahead=*/machine::ClusterConfig{}.network.latency),
        plan(machine::ShardPlan::contiguous(ranks, shards)) {
    machine::ClusterConfig cc;
    cc.network.collision_coeff = 0.0;
    clusters = machine::build_shard_clusters(engines, cc, plan);
    std::vector<machine::Cluster*> ptrs;
    for (auto& c : clusters) ptrs.push_back(c.get());
    comm = std::make_unique<mpi::ShardedComm>(engines, ptrs, plan);
  }

  // Parked coroutine frames reference the comm and clusters; destroy them
  // while those members are still alive (mirroring the sharded runner).
  ~ShardedMpiFixture() {
    for (int s = 0; s < engines.shards(); ++s) {
      engines.shard(s).destroy_suspended_frames();
    }
  }
};

TEST(ShardedComm, CrossShardSendRecvDeliversBytes) {
  ShardedMpiFixture f(4, 2);  // ranks 0,1 on shard 0; ranks 2,3 on shard 1
  std::int64_t got = 0;
  auto sender = [&]() -> sim::Process { co_await f.comm->send(0, 3, 5, 4096); };
  auto receiver = [&]() -> sim::Process { got = co_await f.comm->recv(3, 0, 5); };
  sim::spawn(f.engines.shard(0), sender());
  sim::spawn(f.engines.shard(1), receiver());
  f.engines.run();
  EXPECT_EQ(got, 4096);
  EXPECT_EQ(f.comm->stats().messages, 1);
  EXPECT_EQ(f.comm->stats().bytes, 4096);
}

TEST(ShardedComm, IntraShardTrafficUsesTheInnerTransport) {
  ShardedMpiFixture f(4, 2);
  std::int64_t got = 0;
  auto sender = [&]() -> sim::Process { co_await f.comm->send(0, 1, 9, 512); };
  auto receiver = [&]() -> sim::Process { got = co_await f.comm->recv(1, 0, 9); };
  sim::spawn(f.engines.shard(0), sender());
  sim::spawn(f.engines.shard(0), receiver());
  f.engines.run();
  EXPECT_EQ(got, 512);
  EXPECT_EQ(f.comm->inner(0).stats().messages, 1);
}

TEST(ShardedComm, RendezvousMessagesCrossShardsToo) {
  ShardedMpiFixture f(2, 2);
  const std::int64_t big = 4 * 1024 * 1024;  // far past the eager limit
  std::int64_t got = 0;
  auto sender = [&]() -> sim::Process { co_await f.comm->send(0, 1, 1, big); };
  auto receiver = [&]() -> sim::Process { got = co_await f.comm->recv(1, 0, 1); };
  sim::spawn(f.engines.shard(0), sender());
  sim::spawn(f.engines.shard(1), receiver());
  f.engines.run();
  EXPECT_EQ(got, big);
}

// Rank bodies for the collective tests live at namespace scope: a coroutine
// spawned from a loop-local lambda would outlive its closure (the captures
// die with the lambda object, not with the frame).
sim::Process collective_rank(mpi::ShardedComm& comm, int r, int* done) {
  co_await comm.barrier(r);
  co_await comm.allreduce(r, 1024);
  co_await comm.alltoall(r, 256);
  ++*done;
}

sim::Process burst_rank(mpi::ShardedComm& comm, int r) {
  co_await comm.allreduce(r, 4096);
  co_await comm.alltoallv_burst(r, std::vector<std::int64_t>(8, 100000));
}

TEST(ShardedComm, CollectivesRunAcrossShardBoundaries) {
  ShardedMpiFixture f(8, 4);
  int done = 0;
  std::vector<sim::Process> procs;
  for (int r = 0; r < 8; ++r) {
    procs.push_back(sim::spawn(f.engines.shard(f.plan.shard_of(r)),
                               collective_rank(*f.comm, r, &done)));
  }
  f.engines.run();
  for (std::size_t r = 0; r < procs.size(); ++r) {
    if (auto st = procs[r].watch(); st->exception) {
      try {
        std::rethrow_exception(st->exception);
      } catch (const std::exception& e) {
        ADD_FAILURE() << "rank " << r << " died: " << e.what();
      }
    }
  }
  EXPECT_EQ(done, 8);
}

TEST(ShardedComm, RepeatedRunsAreIdentical) {
  auto run_once = [] {
    ShardedMpiFixture f(8, 4);
    std::vector<sim::Process> procs;
    for (int r = 0; r < 8; ++r) {
      procs.push_back(
          sim::spawn(f.engines.shard(f.plan.shard_of(r)), burst_rank(*f.comm, r)));
    }
    const auto stats = f.engines.run();
    for (const auto& p : procs) EXPECT_TRUE(p.done());
    return std::tuple{stats.events, stats.posts, stats.horizon};
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(ShardedComm, RejectsWildcardReceives) {
  ShardedMpiFixture f(4, 2);
  EXPECT_THROW(f.comm->irecv(0), std::invalid_argument);
  EXPECT_THROW(f.comm->irecv(0, mpi::CommBase::kAnySource, 3),
               std::invalid_argument);
  EXPECT_THROW(f.comm->irecv(0, 2, mpi::CommBase::kAnyTag),
               std::invalid_argument);
}

// --- validate() -------------------------------------------------------------

TEST(ShardConfig, ValidateRejectsNonPositiveAndSingleEngineLayers) {
  core::RunConfig cfg;
  cfg.shards = 0;
  EXPECT_FALSE(cfg.validate().empty());
  EXPECT_THROW(core::RunConfigBuilder(cfg).build(), std::invalid_argument);

  // Every observation layer shards: trace, profile, meters, telemetry,
  // faults, digests, and the flight recorder are all accepted at shards > 1
  // (collected per shard, merged deterministically — DESIGN.md §3.14).
  cfg.shards = 2;
  EXPECT_TRUE(cfg.validate().empty());
  cfg.collect_trace = true;
  cfg.profile = true;
  cfg.use_meters = true;
  cfg.telemetry.enabled = true;
  cfg.faults.events.push_back(fault::node_crash(1.0, 0));
  cfg.faults.resilience.checkpoint_interval_s = 5.0;
  cfg.determinism.digest = true;
  cfg.determinism.flight_recorder = true;
  EXPECT_TRUE(cfg.validate().empty()) << core::describe(cfg.validate());

  // The one residual single-engine assumption: focused per-event capture and
  // seq perturbation key off machine-wide dispatch ordinals, which a sharded
  // run does not have.
  cfg.determinism.capture_begin = 100;
  cfg.determinism.capture_end = 200;
  EXPECT_FALSE(cfg.validate().empty());
  cfg.determinism.capture_begin = cfg.determinism.capture_end = 0;
  cfg.determinism.perturb_seq = 7;
  EXPECT_FALSE(cfg.validate().empty());
  cfg.determinism.perturb_seq = 0;
  EXPECT_TRUE(cfg.validate().empty());
}

TEST(ShardConfig, BuilderSetsShardsAndExposesTopology) {
  core::RunConfigBuilder b;
  b.shards(4).topology().network.latency = sim::from_micros(20);
  const auto cfg = b.seed(9).build();
  EXPECT_EQ(cfg.shards, 4);
  EXPECT_EQ(cfg.cluster.network.latency, sim::from_micros(20));
  EXPECT_EQ(cfg.seed, 9u);
}

TEST(ShardConfig, NetworkValidationFlagsNonPositiveLatency) {
  core::RunConfig cfg;
  cfg.cluster.network.latency = 0;
  const auto issues = cfg.validate();
  ASSERT_FALSE(issues.empty());
  bool found = false;
  for (const auto& i : issues) {
    found = found || i.field.find("latency") != std::string::npos;
  }
  EXPECT_TRUE(found);
}

// --- sharded run_workload ---------------------------------------------------

core::RunResult sharded_ft(int shards, core::RunConfig cfg = {}) {
  cfg.shards = shards;
  cfg.determinism.digest = true;
  return core::run_workload(apps::make_ft(kScale), cfg);
}

TEST(ShardedRunner, MultiShardRunsRepeatBitIdentically) {
  for (int shards : {2, 4, 8}) {
    const auto a = sharded_ft(shards);
    const auto b = sharded_ft(shards);
    EXPECT_EQ(a.delay_s, b.delay_s) << shards << " shards";
    EXPECT_EQ(a.energy_j, b.energy_j) << shards << " shards";
    EXPECT_EQ(a.messages, b.messages) << shards << " shards";
    ASSERT_TRUE(a.determinism.has_value());
    ASSERT_TRUE(b.determinism.has_value());
    EXPECT_EQ(a.determinism->digest.root(), b.determinism->digest.root())
        << shards << " shards";
  }
}

TEST(ShardedRunner, OneShardTakesTheClassicPathBitIdentically) {
  core::RunConfig plain;
  plain.determinism.digest = true;
  const auto classic = core::run_workload(apps::make_ft(kScale), plain);
  const auto one = sharded_ft(1);
  EXPECT_EQ(classic.delay_s, one.delay_s);
  EXPECT_EQ(classic.energy_j, one.energy_j);
  EXPECT_EQ(classic.determinism->digest.root(), one.determinism->digest.root());
}

TEST(ShardedRunner, ShardCountClampsToTheRankCount) {
  // FT has 8 ranks; 64 shards must clamp to 8 and still repeat exactly.
  const auto a = sharded_ft(64);
  const auto b = sharded_ft(8);
  EXPECT_EQ(a.delay_s, b.delay_s);
  EXPECT_EQ(a.determinism->digest.root(), b.determinism->digest.root());
}

TEST(ShardedRunner, ResultsStayPhysicallyCloseToTheClassicEngine) {
  // Different shard counts are different (deterministic) interleavings with
  // an uncontended cross-shard uplink, so results differ in detail — but
  // delay and energy must remain the same physics, not drift wildly.
  const auto classic = core::run_workload(apps::make_ft(kScale), {});
  const auto sharded = sharded_ft(4);
  EXPECT_FALSE(sharded.failed);
  EXPECT_GT(sharded.delay_s, 0);
  EXPECT_GT(sharded.energy_j, 0);
  EXPECT_NEAR(sharded.delay_s / classic.delay_s, 1.0, 0.5);
  EXPECT_NEAR(sharded.energy_j / classic.energy_j, 1.0, 0.5);
}

TEST(ShardedRunner, Fig1ShapedStaticFrequencyRunsRepeatAcrossShardCounts) {
  // Figure 1 shape: FT at a fixed external frequency.
  for (int shards : {2, 4}) {
    core::RunConfig cfg;
    cfg.static_mhz = 600;
    const auto a = sharded_ft(shards, cfg);
    const auto b = sharded_ft(shards, cfg);
    EXPECT_EQ(a.delay_s, b.delay_s) << shards << " shards";
    EXPECT_EQ(a.determinism->digest.root(), b.determinism->digest.root())
        << shards << " shards";
    EXPECT_GT(a.dvs_transitions, 0) << shards << " shards";
  }
}

TEST(ShardedRunner, Fig9ShapedInternalScheduleRunsRepeatAcrossShardCounts) {
  // Figure 9 shape: FT with the INTERNAL per-phase schedule.
  for (int shards : {2, 8}) {
    core::RunConfig cfg;
    cfg.hooks = core::internal_phase_hooks(1400, 600);
    const auto a = sharded_ft(shards, cfg);
    const auto b = sharded_ft(shards, cfg);
    EXPECT_EQ(a.delay_s, b.delay_s) << shards << " shards";
    EXPECT_EQ(a.energy_j, b.energy_j) << shards << " shards";
    EXPECT_EQ(a.determinism->digest.root(), b.determinism->digest.root())
        << shards << " shards";
  }
}

TEST(ShardedRunner, CpuspeedDaemonRunsUnderSharding) {
  core::RunConfig cfg;
  cfg.daemon = core::CpuspeedParams::v1_2_1();
  const auto a = sharded_ft(2, cfg);
  const auto b = sharded_ft(2, cfg);
  EXPECT_EQ(a.delay_s, b.delay_s);
  EXPECT_EQ(a.determinism->digest.root(), b.determinism->digest.root());
}

// --- sharded observability ---------------------------------------------------

// Comp-only rank: identical work on every rank and no communication.  The
// simulation is then bit-identical at every shard count — messages crossing a
// shard boundary pick up lookahead-quantized timing, which is why the FT
// tests above compare repeats only at a fixed count.
sim::Process comp_only_rank(apps::AppContext& ctx, int rank, int steps) {
  ctx.call(ctx.hooks ? ctx.hooks->at_start : nullptr, rank);
  for (int s = 0; s < steps; ++s) {
    if (ctx.tracer != nullptr) ctx.tracer->mark_iteration(rank);
    co_await apps::compute_phase(ctx, rank, /*onchip_s=*/0.06, /*mem_s=*/0.03);
  }
}

apps::Workload make_comp_only(int ranks, int steps) {
  apps::Workload w;
  w.name = "comp." + std::to_string(ranks);
  w.ranks = ranks;
  w.iterations = steps;
  w.make_rank = [steps](apps::AppContext& ctx, int rank) {
    return comp_only_rank(ctx, rank, steps);
  };
  return w;
}

// Pin the DVS transition stall: it is drawn from the node RNG, and shard
// clusters seed their nodes differently per shard, so a [min, max] interval
// would make transition-completion timestamps shard-count-dependent.
void pin_transition_latency(core::RunConfig& cfg) {
  cfg.cluster.node.cpu.transition_min = sim::from_micros(20.0);
  cfg.cluster.node.cpu.transition_max = sim::from_micros(20.0);
}

TEST(ShardedObservability, OutputsAreBitIdenticalAcrossShardCounts) {
  const auto app = make_comp_only(8, 20);
  auto run_at = [&](int shards) {
    core::RunConfig cfg;
    cfg.shards = shards;
    cfg.static_mhz = 600;
    pin_transition_latency(cfg);
    cfg.telemetry.enabled = true;
    cfg.profile = true;
    cfg.determinism.digest = true;
    // Node-targeted fault in an upper shard plus a cluster-wide one (the
    // latter is replicated silently to every shard; only shard 0 records).
    cfg.faults.events.push_back(fault::stuck_dvs(1.0, 5, 2.0));
    cfg.faults.events.push_back(
        fault::sensor_dropout(1.5, -1, fault::SensorMode::Stale, 1.0));
    return core::run_workload(app, cfg);
  };
  const auto one = run_at(1);
  ASSERT_TRUE(one.telemetry.has_value());
  ASSERT_TRUE(one.fault_report.has_value());
  ASSERT_TRUE(one.profiler.has_value());
  for (int shards : {2, 4}) {
    const auto s = run_at(shards);
    ASSERT_TRUE(s.telemetry.has_value()) << shards << " shards";
    // Merged exports carry no shard label/process, so every rendering must
    // be byte-identical to the single-engine run's.
    EXPECT_EQ(telemetry::to_prometheus(one.telemetry->metrics),
              telemetry::to_prometheus(s.telemetry->metrics))
        << shards << " shards";
    EXPECT_EQ(one.telemetry->chrome_trace_json, s.telemetry->chrome_trace_json)
        << shards << " shards";
    EXPECT_EQ(telemetry::series_csv(*one.telemetry),
              telemetry::series_csv(*s.telemetry))
        << shards << " shards";
    EXPECT_EQ(telemetry::decisions_csv(*one.telemetry),
              telemetry::decisions_csv(*s.telemetry))
        << shards << " shards";
    EXPECT_EQ(telemetry::faults_csv(*one.telemetry),
              telemetry::faults_csv(*s.telemetry))
        << shards << " shards";
    EXPECT_EQ(one.timeline, s.timeline) << shards << " shards";
    ASSERT_TRUE(s.fault_report.has_value()) << shards << " shards";
    EXPECT_EQ(one.fault_report->summary(), s.fault_report->summary())
        << shards << " shards";
    ASSERT_TRUE(s.profiler.has_value()) << shards << " shards";
    EXPECT_EQ(one.profiler->attribution.scoped_j, s.profiler->attribution.scoped_j)
        << shards << " shards";
    EXPECT_EQ(one.profiler->slack.makespan_s, s.profiler->slack.makespan_s)
        << shards << " shards";
    EXPECT_EQ(one.profiler->slack.rank_elastic_s, s.profiler->slack.rank_elastic_s)
        << shards << " shards";
    // Per-shard provenance views exist only on the sharded run, and the
    // per-shard Prometheus view is the only place the shard label appears.
    EXPECT_EQ(static_cast<int>(s.telemetry->shard_metrics.size()), shards);
    EXPECT_TRUE(one.telemetry->shard_metrics.empty());
    const auto per_shard = telemetry::to_prometheus_sharded(*s.telemetry);
    EXPECT_NE(per_shard.find("shard=\"0\""), std::string::npos);
    EXPECT_EQ(telemetry::to_prometheus(one.telemetry->metrics).find("shard=\""),
              std::string::npos);
  }
}

TEST(ShardedObservability, CrashInAnUpperShardMatchesTheSingleEngineFaultReport) {
  const auto app = make_comp_only(8, 20);
  auto run_at = [&](int shards) {
    core::RunConfig cfg;
    cfg.shards = shards;
    cfg.static_mhz = 600;
    pin_transition_latency(cfg);
    // Crash node 5 — shard 2's second node under contiguous(8, 4) — with
    // coordinated checkpoint/restart armed.
    cfg.faults.events.push_back(fault::node_crash(2.3, 5, /*boot_delay_s=*/5.0));
    cfg.faults.resilience.checkpoint_interval_s = 1.7;
    cfg.faults.resilience.checkpoint_cost_s = 0.2;
    return core::run_workload(app, cfg);
  };
  const auto one = run_at(1);
  const auto four = run_at(4);
  ASSERT_TRUE(one.fault_report.has_value());
  ASSERT_TRUE(four.fault_report.has_value());
  EXPECT_FALSE(four.failed) << four.failure;
  EXPECT_EQ(one.fault_report->node_reboots, 1);
  EXPECT_EQ(one.fault_report->summary(), four.fault_report->summary());
}

TEST(ShardedRunner, CampaignFingerprintIsReproducibleWithShardsInTheBase) {
  core::RunConfig base;
  base.shards = 2;
  campaign::ExperimentSpec spec;
  spec.base(base)
      .workload(apps::make_ft(kScale))
      .axis(campaign::Axis::static_mhz({600, 1400}))
      .trials(2)
      .collect_digests();
  const auto a = campaign::CampaignRunner(campaign::CampaignOptions{}).run(spec);
  const auto b = campaign::CampaignRunner(campaign::CampaignOptions{}).run(spec);
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  for (std::size_t i = 0; i < a.cells.size(); ++i) {
    EXPECT_TRUE(a.cells[i].has_digest);
    EXPECT_EQ(a.cells[i].digest_root, b.cells[i].digest_root) << "cell " << i;
  }
}

}  // namespace
}  // namespace pcd
