// Unit tests for the discrete-event engine and coroutine process layer.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "sim/process.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace sim = pcd::sim;

TEST(Time, Conversions) {
  EXPECT_EQ(sim::from_seconds(1.0), sim::kSecond);
  EXPECT_EQ(sim::from_seconds(0.5), 500 * sim::kMillisecond);
  EXPECT_EQ(sim::from_micros(25.0), 25 * sim::kMicrosecond);
  EXPECT_EQ(sim::from_millis(2.0), 2 * sim::kMillisecond);
  EXPECT_DOUBLE_EQ(sim::to_seconds(sim::kSecond), 1.0);
  EXPECT_DOUBLE_EQ(sim::to_seconds(0), 0.0);
  // Round-trip within one tick.
  const double x = 123.456789123;
  EXPECT_NEAR(sim::to_seconds(sim::from_seconds(x)), x, 1e-9);
}

TEST(Engine, RunsEventsInTimeOrder) {
  sim::Engine e;
  std::vector<int> order;
  e.schedule_at(30, [&] { order.push_back(3); });
  e.schedule_at(10, [&] { order.push_back(1); });
  e.schedule_at(20, [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(e.now(), 30);
}

TEST(Engine, SameTimestampIsFifo) {
  sim::Engine e;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    e.schedule_at(5, [&order, i] { order.push_back(i); });
  }
  e.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Engine, NowAdvancesOnlyThroughEvents) {
  sim::Engine e;
  sim::SimTime seen = -1;
  e.schedule_at(42, [&] { seen = e.now(); });
  EXPECT_EQ(e.now(), 0);
  e.run();
  EXPECT_EQ(seen, 42);
  EXPECT_EQ(e.now(), 42);
}

TEST(Engine, ScheduleInIsRelative) {
  sim::Engine e;
  std::vector<sim::SimTime> times;
  e.schedule_at(100, [&] {
    e.schedule_in(50, [&] { times.push_back(e.now()); });
  });
  e.run();
  ASSERT_EQ(times.size(), 1u);
  EXPECT_EQ(times[0], 150);
}

TEST(Engine, CancelPreventsExecution) {
  sim::Engine e;
  bool ran = false;
  auto id = e.schedule_at(10, [&] { ran = true; });
  EXPECT_TRUE(e.cancel(id));
  EXPECT_FALSE(e.cancel(id));  // double-cancel reports failure
  e.run();
  EXPECT_FALSE(ran);
}

TEST(Engine, CancelAfterRunReturnsFalse) {
  sim::Engine e;
  auto id = e.schedule_at(10, [] {});
  e.run();
  EXPECT_FALSE(e.cancel(id));
}

TEST(Engine, RunUntilStopsAtBoundaryAndAdvancesClock) {
  sim::Engine e;
  std::vector<int> order;
  e.schedule_at(10, [&] { order.push_back(1); });
  e.schedule_at(20, [&] { order.push_back(2); });
  e.schedule_at(30, [&] { order.push_back(3); });
  e.run_until(20);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(e.now(), 20);
  e.run_until(25);
  EXPECT_EQ(e.now(), 25);
  EXPECT_EQ(order.size(), 2u);
  e.run();
  EXPECT_EQ(order.size(), 3u);
}

TEST(Engine, RunUntilRejectsPast) {
  sim::Engine e;
  e.schedule_at(50, [] {});
  e.run();
  EXPECT_THROW(e.run_until(10), std::invalid_argument);
}

TEST(Engine, EventsScheduledDuringRunAreProcessed) {
  sim::Engine e;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 100) e.schedule_in(1, recurse);
  };
  e.schedule_at(0, recurse);
  e.run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(e.now(), 99);
}

TEST(Engine, MaxEventsBound) {
  sim::Engine e;
  int count = 0;
  for (int i = 0; i < 10; ++i) e.schedule_at(i, [&] { ++count; });
  EXPECT_EQ(e.run(4), 4u);
  EXPECT_EQ(count, 4);
  e.run();
  EXPECT_EQ(count, 10);
}

// --- Coroutine processes -------------------------------------------------

namespace {

sim::Process push_after(sim::Engine& e, std::vector<int>& out, sim::SimDuration dt,
                        int value) {
  (void)e;
  co_await sim::delay(dt);
  out.push_back(value);
}

sim::Process nested_child(std::vector<std::string>& log) {
  log.push_back("child-start");
  co_await sim::delay(10);
  log.push_back("child-end");
}

sim::Process nested_parent(sim::Engine& e, std::vector<std::string>& log) {
  log.push_back("parent-start");
  auto child = sim::spawn(e, nested_child(log));
  co_await sim::delay(5);
  log.push_back("parent-mid");
  co_await child;
  log.push_back("parent-end");
}

sim::Process throws_after(sim::SimDuration dt) {
  co_await sim::delay(dt);
  throw std::runtime_error("boom");
}

sim::Process joins_thrower(sim::Engine& e, bool& caught) {
  auto t = sim::spawn(e, throws_after(5));
  try {
    co_await t;
  } catch (const std::runtime_error&) {
    caught = true;
  }
}

}  // namespace

TEST(Process, DelaySuspendsForExactDuration) {
  sim::Engine e;
  std::vector<int> out;
  sim::spawn(e, push_after(e, out, 100, 1));
  sim::spawn(e, push_after(e, out, 50, 2));
  e.run();
  EXPECT_EQ(out, (std::vector<int>{2, 1}));
  EXPECT_EQ(e.now(), 100);
}

TEST(Process, ZeroDelayDoesNotSuspend) {
  sim::Engine e;
  std::vector<int> out;
  sim::spawn(e, push_after(e, out, 0, 7));
  e.run();
  EXPECT_EQ(out, (std::vector<int>{7}));
}

TEST(Process, JoinWaitsForChild) {
  sim::Engine e;
  std::vector<std::string> log;
  auto p = sim::spawn(e, nested_parent(e, log));
  e.run();
  EXPECT_TRUE(p.done());
  ASSERT_EQ(log.size(), 5u);
  EXPECT_EQ(log[0], "parent-start");
  EXPECT_EQ(log[1], "child-start");
  EXPECT_EQ(log[2], "parent-mid");
  EXPECT_EQ(log[3], "child-end");
  EXPECT_EQ(log[4], "parent-end");
  EXPECT_EQ(e.now(), 10);
}

TEST(Process, JoinOnCompletedProcessDoesNotSuspend) {
  sim::Engine e;
  std::vector<int> out;
  auto p = sim::spawn(e, push_after(e, out, 1, 1));
  e.run();
  ASSERT_TRUE(p.done());
  bool resumed = false;
  auto joiner = [](sim::Process& target, bool& flag) -> sim::Process {
    co_await target;
    flag = true;
  };
  sim::spawn(e, joiner(p, resumed));
  e.run();
  EXPECT_TRUE(resumed);
}

TEST(Process, OrphanExceptionSurfacesFromRun) {
  sim::Engine e;
  sim::spawn(e, throws_after(5));
  EXPECT_THROW(e.run(), std::runtime_error);
}

TEST(Process, JoinedExceptionIsDeliveredToJoinerOnly) {
  sim::Engine e;
  bool caught = false;
  sim::spawn(e, joins_thrower(e, caught));
  EXPECT_NO_THROW(e.run());
  EXPECT_TRUE(caught);
}

TEST(Process, UnstartedProcessDoesNotLeak) {
  // Destroying a never-spawned Process must free the frame (checked by ASAN
  // builds; here we just exercise the path).
  std::vector<int> out;
  sim::Engine e;
  { auto p = push_after(e, out, 5, 1); EXPECT_FALSE(p.started()); }
  e.run();
  EXPECT_TRUE(out.empty());
}

TEST(Process, BlockedProcessesAreDestroyedWithEngine) {
  // A process blocked on an event that never fires must be reclaimed by
  // ~Engine without touching freed memory.
  auto ev_holder = std::make_unique<sim::Engine>();
  auto& e = *ev_holder;
  auto forever = [](sim::Engine& eng) -> sim::Process {
    sim::Event never(eng);
    co_await never.wait();
  };
  auto p = sim::spawn(e, forever(e));
  e.run();
  EXPECT_FALSE(p.done());
  ev_holder.reset();  // must not crash or leak
}

// --- Event ----------------------------------------------------------------

namespace {

sim::Process wait_event(sim::Event& ev, std::vector<int>& out, int tag) {
  co_await ev.wait();
  out.push_back(tag);
}

}  // namespace

TEST(Event, SetWakesAllWaiters) {
  sim::Engine e;
  sim::Event ev(e);
  std::vector<int> out;
  sim::spawn(e, wait_event(ev, out, 1));
  sim::spawn(e, wait_event(ev, out, 2));
  e.schedule_at(100, [&] { ev.set(); });
  e.run();
  EXPECT_EQ(out, (std::vector<int>{1, 2}));
  EXPECT_EQ(e.now(), 100);
}

TEST(Event, WaitOnSignaledEventDoesNotSuspend) {
  sim::Engine e;
  sim::Event ev(e);
  ev.set();
  std::vector<int> out;
  sim::spawn(e, wait_event(ev, out, 9));
  e.run();
  EXPECT_EQ(out, (std::vector<int>{9}));
}

TEST(Event, ResetReArms) {
  sim::Engine e;
  sim::Event ev(e);
  ev.set();
  EXPECT_TRUE(ev.signaled());
  ev.reset();
  EXPECT_FALSE(ev.signaled());
  std::vector<int> out;
  sim::spawn(e, wait_event(ev, out, 1));
  e.run();
  EXPECT_TRUE(out.empty());
  ev.set();
  e.run();
  EXPECT_EQ(out, (std::vector<int>{1}));
}

TEST(Event, DoubleSetIsIdempotent) {
  sim::Engine e;
  sim::Event ev(e);
  std::vector<int> out;
  sim::spawn(e, wait_event(ev, out, 1));
  e.schedule_at(1, [&] { ev.set(); ev.set(); });
  e.run();
  EXPECT_EQ(out.size(), 1u);
}

// --- Queue ----------------------------------------------------------------

namespace {

sim::Process consume_n(sim::Queue<int>& q, std::vector<int>& out, int n) {
  for (int i = 0; i < n; ++i) {
    out.push_back(co_await q.pop());
  }
}

}  // namespace

TEST(Queue, PopReturnsPushedItemsInOrder) {
  sim::Engine e;
  sim::Queue<int> q(e);
  q.push(1);
  q.push(2);
  q.push(3);
  std::vector<int> out;
  sim::spawn(e, consume_n(q, out, 3));
  e.run();
  EXPECT_EQ(out, (std::vector<int>{1, 2, 3}));
}

TEST(Queue, PopSuspendsUntilPush) {
  sim::Engine e;
  sim::Queue<int> q(e);
  std::vector<int> out;
  sim::spawn(e, consume_n(q, out, 2));
  e.schedule_at(10, [&] { q.push(42); });
  e.schedule_at(20, [&] { q.push(43); });
  e.run();
  EXPECT_EQ(out, (std::vector<int>{42, 43}));
  EXPECT_EQ(e.now(), 20);
}

TEST(Queue, MultipleWaitersServedFifo) {
  sim::Engine e;
  sim::Queue<int> q(e);
  std::vector<int> got_a, got_b;
  sim::spawn(e, consume_n(q, got_a, 1));
  sim::spawn(e, consume_n(q, got_b, 1));
  e.run();
  EXPECT_EQ(q.waiter_count(), 2u);
  e.schedule_in(1, [&] { q.push(10); q.push(20); });
  e.run();
  EXPECT_EQ(got_a, (std::vector<int>{10}));
  EXPECT_EQ(got_b, (std::vector<int>{20}));
}

TEST(Queue, HandoffIsNotStolenBySameTimestampPop) {
  // Waiter W is woken by a push; a second pop arriving at the same
  // timestamp must not steal W's item.
  sim::Engine e;
  sim::Queue<int> q(e);
  std::vector<int> waiter_got, late_got;
  sim::spawn(e, consume_n(q, waiter_got, 1));
  e.run();  // waiter now suspended
  e.schedule_at(5, [&] { q.push(1); });
  e.schedule_at(5, [&] {
    // Late popper at same time: must get the *second* item.
    sim::spawn(e, consume_n(q, late_got, 1));
    q.push(2);
  });
  e.run();
  EXPECT_EQ(waiter_got, (std::vector<int>{1}));
  EXPECT_EQ(late_got, (std::vector<int>{2}));
}

// --- Rng -------------------------------------------------------------------

TEST(Rng, DeterministicForEqualSeeds) {
  sim::Rng a(12345), b(12345);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  sim::Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval) {
  sim::Rng r(7);
  double lo = 1.0, hi = 0.0, sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    double x = r.uniform();
    lo = std::min(lo, x);
    hi = std::max(hi, x);
    sum += x;
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
  }
  EXPECT_NEAR(sum / n, 0.5, 0.01);
  EXPECT_LT(lo, 0.01);
  EXPECT_GT(hi, 0.99);
}

TEST(Rng, UniformRange) {
  sim::Rng r(9);
  for (int i = 0; i < 1000; ++i) {
    double x = r.uniform(20.0, 30.0);
    ASSERT_GE(x, 20.0);
    ASSERT_LT(x, 30.0);
  }
}

TEST(Rng, UniformIntBounds) {
  sim::Rng r(11);
  std::vector<int> histogram(10, 0);
  for (int i = 0; i < 10000; ++i) {
    auto v = r.uniform_int(10);
    ASSERT_LT(v, 10u);
    ++histogram[v];
  }
  for (int count : histogram) EXPECT_GT(count, 700);  // roughly uniform
}

TEST(Rng, SplitStreamsAreIndependent) {
  sim::Rng parent(99);
  sim::Rng child1 = parent.split();
  sim::Rng child2 = parent.split();
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (child1.next_u64() == child2.next_u64());
  EXPECT_EQ(same, 0);
}

TEST(Rng, BernoulliProbability) {
  sim::Rng r(21);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += r.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}
