// Unit tests for the discrete-event engine and coroutine process layer.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "sim/process.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace sim = pcd::sim;

TEST(Time, Conversions) {
  EXPECT_EQ(sim::from_seconds(1.0), sim::kSecond);
  EXPECT_EQ(sim::from_seconds(0.5), 500 * sim::kMillisecond);
  EXPECT_EQ(sim::from_micros(25.0), 25 * sim::kMicrosecond);
  EXPECT_EQ(sim::from_millis(2.0), 2 * sim::kMillisecond);
  EXPECT_DOUBLE_EQ(sim::to_seconds(sim::kSecond), 1.0);
  EXPECT_DOUBLE_EQ(sim::to_seconds(0), 0.0);
  // Round-trip within one tick.
  const double x = 123.456789123;
  EXPECT_NEAR(sim::to_seconds(sim::from_seconds(x)), x, 1e-9);
}

TEST(Engine, RunsEventsInTimeOrder) {
  sim::Engine e;
  std::vector<int> order;
  e.schedule_at(30, [&] { order.push_back(3); });
  e.schedule_at(10, [&] { order.push_back(1); });
  e.schedule_at(20, [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(e.now(), 30);
}

TEST(Engine, SameTimestampIsFifo) {
  sim::Engine e;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    e.schedule_at(5, [&order, i] { order.push_back(i); });
  }
  e.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Engine, NowAdvancesOnlyThroughEvents) {
  sim::Engine e;
  sim::SimTime seen = -1;
  e.schedule_at(42, [&] { seen = e.now(); });
  EXPECT_EQ(e.now(), 0);
  e.run();
  EXPECT_EQ(seen, 42);
  EXPECT_EQ(e.now(), 42);
}

TEST(Engine, ScheduleInIsRelative) {
  sim::Engine e;
  std::vector<sim::SimTime> times;
  e.schedule_at(100, [&] {
    e.schedule_in(50, [&] { times.push_back(e.now()); });
  });
  e.run();
  ASSERT_EQ(times.size(), 1u);
  EXPECT_EQ(times[0], 150);
}

TEST(Engine, CancelPreventsExecution) {
  sim::Engine e;
  bool ran = false;
  auto id = e.schedule_at(10, [&] { ran = true; });
  EXPECT_TRUE(e.cancel(id));
  EXPECT_FALSE(e.cancel(id));  // double-cancel reports failure
  e.run();
  EXPECT_FALSE(ran);
}

TEST(Engine, CancelAfterRunReturnsFalse) {
  sim::Engine e;
  auto id = e.schedule_at(10, [] {});
  e.run();
  EXPECT_FALSE(e.cancel(id));
}

TEST(Engine, RunUntilStopsAtBoundaryAndAdvancesClock) {
  sim::Engine e;
  std::vector<int> order;
  e.schedule_at(10, [&] { order.push_back(1); });
  e.schedule_at(20, [&] { order.push_back(2); });
  e.schedule_at(30, [&] { order.push_back(3); });
  e.run_until(20);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(e.now(), 20);
  e.run_until(25);
  EXPECT_EQ(e.now(), 25);
  EXPECT_EQ(order.size(), 2u);
  e.run();
  EXPECT_EQ(order.size(), 3u);
}

TEST(Engine, RunUntilRejectsPast) {
  sim::Engine e;
  e.schedule_at(50, [] {});
  e.run();
  EXPECT_THROW(e.run_until(10), std::invalid_argument);
}

TEST(Engine, EventsScheduledDuringRunAreProcessed) {
  sim::Engine e;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 100) e.schedule_in(1, recurse);
  };
  e.schedule_at(0, recurse);
  e.run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(e.now(), 99);
}

TEST(Engine, MaxEventsBound) {
  sim::Engine e;
  int count = 0;
  for (int i = 0; i < 10; ++i) e.schedule_at(i, [&] { ++count; });
  EXPECT_EQ(e.run(4), 4u);
  EXPECT_EQ(count, 4);
  e.run();
  EXPECT_EQ(count, 10);
}

// --- EventId validity and cancellation semantics --------------------------

TEST(Engine, DefaultEventIdIsInvalidAndRejected) {
  sim::Engine e;
  sim::EventId none;
  EXPECT_FALSE(none.valid());
  EXPECT_FALSE(e.cancel(none));
  auto id = e.schedule_at(10, [] {});
  EXPECT_TRUE(id.valid());
  EXPECT_NE(id, none);
  EXPECT_TRUE(e.cancel(id));
  EXPECT_FALSE(e.cancel(sim::EventId{}));  // still rejected after activity
  e.run();
}

TEST(Engine, CancelOwnIdInsideCallbackReturnsFalse) {
  // By the time a one-shot callback runs, its id has already been retired.
  sim::Engine e;
  sim::EventId id;
  bool cancel_result = true;
  id = e.schedule_at(10, [&] { cancel_result = e.cancel(id); });
  e.run();
  EXPECT_FALSE(cancel_result);
}

TEST(Engine, CancelOtherEventFromCallback) {
  sim::Engine e;
  bool ran = false;
  auto victim = e.schedule_at(20, [&] { ran = true; });
  e.schedule_at(10, [&] { EXPECT_TRUE(e.cancel(victim)); });
  e.run();
  EXPECT_FALSE(ran);
  EXPECT_EQ(e.now(), 10);  // the cancelled event never advanced the clock
}

TEST(Engine, PendingEventsTracksLiveEvents) {
  sim::Engine e;
  EXPECT_TRUE(e.empty());
  auto a = e.schedule_at(10, [] {});
  e.schedule_at(20, [] {});
  EXPECT_EQ(e.pending_events(), 2u);
  EXPECT_TRUE(e.cancel(a));
  EXPECT_EQ(e.pending_events(), 1u);
  e.run();
  EXPECT_TRUE(e.empty());
  EXPECT_EQ(e.pending_events(), 0u);
}

// --- run_until exception semantics ----------------------------------------

TEST(Engine, RunUntilClockStaysAtThrowingEventTime) {
  sim::Engine e;
  e.schedule_at(5, [] {});
  e.schedule_at(10, [] { throw std::runtime_error("boom"); });
  EXPECT_THROW(e.run_until(100), std::runtime_error);
  // The clock must not jump ahead to the run_until() boundary.
  EXPECT_EQ(e.now(), 10);
}

TEST(Engine, RunUntilClockStaysAtOrphanExceptionTime) {
  sim::Engine e;
  auto thrower = [](sim::SimDuration dt) -> sim::Process {
    co_await sim::delay(dt);
    throw std::runtime_error("boom");
  };
  sim::spawn(e, thrower(10));
  EXPECT_THROW(e.run_until(100), std::runtime_error);
  EXPECT_EQ(e.now(), 10);
}

TEST(Engine, RunUntilIgnoresCancelledEntriesAtBoundary) {
  // A cancelled entry inside the window must not cause dispatch of a live
  // event beyond the boundary.
  sim::Engine e;
  bool late_ran = false;
  auto inside = e.schedule_at(10, [] {});
  e.schedule_at(100, [&] { late_ran = true; });
  EXPECT_TRUE(e.cancel(inside));
  EXPECT_EQ(e.run_until(50), 0u);
  EXPECT_FALSE(late_ran);
  EXPECT_EQ(e.now(), 50);
  e.run();
  EXPECT_TRUE(late_ran);
  EXPECT_EQ(e.now(), 100);
}

// --- periodic events (schedule_every) -------------------------------------

TEST(Engine, ScheduleEveryFiresAtFixedCadence) {
  sim::Engine e;
  std::vector<sim::SimTime> times;
  auto id = e.schedule_every(10, [&] { times.push_back(e.now()); });
  EXPECT_EQ(e.pending_events(), 1u);  // armed recurrence counts once
  e.run_until(55);
  EXPECT_EQ(times, (std::vector<sim::SimTime>{10, 20, 30, 40, 50}));
  EXPECT_EQ(e.pending_events(), 1u);
  EXPECT_TRUE(e.cancel(id));
  EXPECT_TRUE(e.empty());
  EXPECT_EQ(e.run(), 0u);
}

TEST(Engine, ScheduleEveryFirstDelayDiffersFromPeriod) {
  sim::Engine e;
  std::vector<sim::SimTime> times;
  auto id = e.schedule_every(5, 10, [&] { times.push_back(e.now()); });
  e.run_until(30);
  EXPECT_EQ(times, (std::vector<sim::SimTime>{5, 15, 25}));
  EXPECT_TRUE(e.cancel(id));
}

TEST(Engine, ScheduleEveryRejectsNonPositivePeriod) {
  sim::Engine e;
  EXPECT_THROW(e.schedule_every(0, [] {}), std::invalid_argument);
  EXPECT_THROW(e.schedule_every(5, -1, [] {}), std::invalid_argument);
}

TEST(Engine, ScheduleEveryInterleavesFifoWithOneShots) {
  // A periodic event must interleave with one-shots exactly as if its
  // callback rescheduled itself with a trailing schedule_in: each occurrence
  // draws its sequence number when the previous one completes.
  sim::Engine e;
  std::vector<std::string> order;
  auto id = e.schedule_every(10, [&] { order.push_back("P"); });  // seq drawn 1st
  e.schedule_at(10, [&] { order.push_back("A"); });               // seq drawn 2nd
  e.schedule_at(20, [&] { order.push_back("B"); });               // seq drawn 3rd
  e.run_until(20);
  // t=10: P (earlier seq) then A.  t=20: B precedes the re-armed P, whose
  // sequence number was drawn only after the t=10 occurrence finished.
  EXPECT_EQ(order, (std::vector<std::string>{"P", "A", "B", "P"}));
  EXPECT_TRUE(e.cancel(id));
}

TEST(Engine, CancelPeriodicFromOwnCallbackStopsRecurrence) {
  sim::Engine e;
  int count = 0;
  sim::EventId id;
  id = e.schedule_every(10, [&] {
    if (++count == 3) EXPECT_TRUE(e.cancel(id));  // mid-fire cancel succeeds
  });
  e.run();
  EXPECT_EQ(count, 3);
  EXPECT_TRUE(e.empty());
  EXPECT_FALSE(e.cancel(id));  // already cancelled
}

TEST(Engine, CancelPeriodicBetweenFires) {
  sim::Engine e;
  int count = 0;
  auto id = e.schedule_every(10, [&] { ++count; });
  e.run_until(25);
  EXPECT_EQ(count, 2);
  EXPECT_TRUE(e.cancel(id));
  EXPECT_FALSE(e.cancel(id));  // double-cancel reports failure
  e.run();
  EXPECT_EQ(count, 2);
}

TEST(Engine, PeriodicCallbackExceptionStopsRecurrence) {
  sim::Engine e;
  int count = 0;
  e.schedule_every(10, [&] {
    if (++count == 2) throw std::runtime_error("boom");
  });
  EXPECT_THROW(e.run(), std::runtime_error);
  EXPECT_EQ(count, 2);
  EXPECT_EQ(e.now(), 20);
  EXPECT_TRUE(e.empty());
  EXPECT_EQ(e.run(), 0u);
}

TEST(Engine, ScheduleEverySpansWheelLevelsAndOverflow) {
  // Periods exercising different wheel levels: ~1 ms (level 0/1), 1 s
  // (level 1/2), 5 min (level 3), and 6 h (beyond the wheel horizon, parked
  // in the overflow bucket).  All must fire at exact multiples.
  sim::Engine e;
  const sim::SimDuration kMs = sim::from_millis(1.0);
  const sim::SimDuration kS = sim::from_seconds(1.0);
  std::vector<sim::SimTime> ms_times, s_times, min5_times, h6_times;
  auto ms_id = e.schedule_every(kMs, [&] { ms_times.push_back(e.now()); });
  auto s_id = e.schedule_every(kS, [&] { s_times.push_back(e.now()); });
  e.schedule_every(300 * kS, [&] { min5_times.push_back(e.now()); });
  e.schedule_every(6 * 3600 * kS, [&] { h6_times.push_back(e.now()); });
  e.run_until(sim::from_seconds(3.5));
  EXPECT_EQ(ms_times.size(), 3500u);
  EXPECT_EQ(ms_times.front(), kMs);
  EXPECT_EQ(ms_times.back(), 3500 * kMs);
  EXPECT_EQ(s_times, (std::vector<sim::SimTime>{kS, 2 * kS, 3 * kS}));
  EXPECT_TRUE(min5_times.empty());
  EXPECT_TRUE(e.cancel(ms_id));  // drop the fast timers before the long leap
  EXPECT_TRUE(e.cancel(s_id));
  e.run_until(sim::from_seconds(13.0 * 3600));
  EXPECT_EQ(min5_times.size(), 13u * 3600 / 300);
  EXPECT_EQ(min5_times.front(), 300 * kS);
  EXPECT_EQ(h6_times, (std::vector<sim::SimTime>{6 * 3600 * kS, 12 * 3600 * kS}));
}

// --- generation wrap (white-box) ------------------------------------------

namespace pcd::sim {

struct EngineTestAccess {
  static std::uint32_t slot_gen(Engine& e, std::uint32_t slot) {
    return e.node(slot).gen;
  }
  static void force_slot_gen(Engine& e, std::uint32_t slot, std::uint32_t gen) {
    e.node(slot).gen = gen;
  }
};

}  // namespace pcd::sim

TEST(Engine, EventIdStaysSafeAcrossGenerationWrap) {
  sim::Engine e;
  // Age the slot so the pre-wrap id's generation is not 1 (the value the
  // wrap skips to), then drive the generation counter to the wrap point.
  e.schedule_at(1, [] {});
  e.run();
  auto id0 = e.schedule_at(10, [] {});
  EXPECT_TRUE(e.cancel(id0));  // frees the slot, bumps its generation
  sim::EngineTestAccess::force_slot_gen(e, id0.slot, 0xffffffffu);
  auto id1 = e.schedule_at(10, [] {});
  ASSERT_EQ(id1.slot, id0.slot);  // free list reuses the slot
  EXPECT_EQ(id1.gen, 0xffffffffu);
  EXPECT_TRUE(e.cancel(id1));  // generation wraps past 0 (reserved) to 1
  EXPECT_EQ(sim::EngineTestAccess::slot_gen(e, id0.slot), 1u);
  auto id2 = e.schedule_at(10, [] {});
  ASSERT_EQ(id2.slot, id0.slot);
  EXPECT_EQ(id2.gen, 1u);
  EXPECT_FALSE(e.cancel(id0));  // stale pre-wrap ids cannot touch the event
  EXPECT_FALSE(e.cancel(id1));
  EXPECT_TRUE(e.cancel(id2));
  e.run();
}

// --- InlineFunction --------------------------------------------------------

TEST(InlineFunction, AcceptsMoveOnlyCallables) {
  auto p = std::make_unique<int>(7);
  sim::InlineFunction<int()> f = [q = std::move(p)] { return *q; };
  ASSERT_TRUE(static_cast<bool>(f));
  EXPECT_EQ(f(), 7);
  auto g = std::move(f);
  EXPECT_EQ(g(), 7);
  EXPECT_FALSE(static_cast<bool>(f));  // NOLINT(bugprone-use-after-move)
}

TEST(InlineFunction, HeapFallbackForOversizedCaptures) {
  std::array<std::int64_t, 16> big{};  // 128 bytes: exceeds the inline buffer
  big[15] = 42;
  sim::InlineFunction<std::int64_t()> f = [big] { return big[15]; };
  EXPECT_EQ(f(), 42);
  auto g = std::move(f);  // heap target: ownership transfer, no copy
  EXPECT_EQ(g(), 42);
  g.reset();
  EXPECT_FALSE(static_cast<bool>(g));
}

TEST(InlineFunction, MoveAssignReplacesTarget) {
  int a = 0, b = 0;
  sim::InlineFunction<void()> f = [&a] { ++a; };
  sim::InlineFunction<void()> g = [&b] { ++b; };
  f();
  f = std::move(g);
  f();
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 1);
}

// --- Coroutine processes -------------------------------------------------

namespace {

sim::Process push_after(sim::Engine& e, std::vector<int>& out, sim::SimDuration dt,
                        int value) {
  (void)e;
  co_await sim::delay(dt);
  out.push_back(value);
}

sim::Process nested_child(std::vector<std::string>& log) {
  log.push_back("child-start");
  co_await sim::delay(10);
  log.push_back("child-end");
}

sim::Process nested_parent(sim::Engine& e, std::vector<std::string>& log) {
  log.push_back("parent-start");
  auto child = sim::spawn(e, nested_child(log));
  co_await sim::delay(5);
  log.push_back("parent-mid");
  co_await child;
  log.push_back("parent-end");
}

sim::Process throws_after(sim::SimDuration dt) {
  co_await sim::delay(dt);
  throw std::runtime_error("boom");
}

sim::Process joins_thrower(sim::Engine& e, bool& caught) {
  auto t = sim::spawn(e, throws_after(5));
  try {
    co_await t;
  } catch (const std::runtime_error&) {
    caught = true;
  }
}

}  // namespace

TEST(Process, DelaySuspendsForExactDuration) {
  sim::Engine e;
  std::vector<int> out;
  sim::spawn(e, push_after(e, out, 100, 1));
  sim::spawn(e, push_after(e, out, 50, 2));
  e.run();
  EXPECT_EQ(out, (std::vector<int>{2, 1}));
  EXPECT_EQ(e.now(), 100);
}

TEST(Process, ZeroDelayDoesNotSuspend) {
  sim::Engine e;
  std::vector<int> out;
  sim::spawn(e, push_after(e, out, 0, 7));
  e.run();
  EXPECT_EQ(out, (std::vector<int>{7}));
}

TEST(Process, JoinWaitsForChild) {
  sim::Engine e;
  std::vector<std::string> log;
  auto p = sim::spawn(e, nested_parent(e, log));
  e.run();
  EXPECT_TRUE(p.done());
  ASSERT_EQ(log.size(), 5u);
  EXPECT_EQ(log[0], "parent-start");
  EXPECT_EQ(log[1], "child-start");
  EXPECT_EQ(log[2], "parent-mid");
  EXPECT_EQ(log[3], "child-end");
  EXPECT_EQ(log[4], "parent-end");
  EXPECT_EQ(e.now(), 10);
}

TEST(Process, JoinOnCompletedProcessDoesNotSuspend) {
  sim::Engine e;
  std::vector<int> out;
  auto p = sim::spawn(e, push_after(e, out, 1, 1));
  e.run();
  ASSERT_TRUE(p.done());
  bool resumed = false;
  auto joiner = [](sim::Process& target, bool& flag) -> sim::Process {
    co_await target;
    flag = true;
  };
  sim::spawn(e, joiner(p, resumed));
  e.run();
  EXPECT_TRUE(resumed);
}

TEST(Process, OrphanExceptionSurfacesFromRun) {
  sim::Engine e;
  sim::spawn(e, throws_after(5));
  EXPECT_THROW(e.run(), std::runtime_error);
}

TEST(Process, JoinedExceptionIsDeliveredToJoinerOnly) {
  sim::Engine e;
  bool caught = false;
  sim::spawn(e, joins_thrower(e, caught));
  EXPECT_NO_THROW(e.run());
  EXPECT_TRUE(caught);
}

TEST(Process, UnstartedProcessDoesNotLeak) {
  // Destroying a never-spawned Process must free the frame (checked by ASAN
  // builds; here we just exercise the path).
  std::vector<int> out;
  sim::Engine e;
  { auto p = push_after(e, out, 5, 1); EXPECT_FALSE(p.started()); }
  e.run();
  EXPECT_TRUE(out.empty());
}

TEST(Process, BlockedProcessesAreDestroyedWithEngine) {
  // A process blocked on an event that never fires must be reclaimed by
  // ~Engine without touching freed memory.
  auto ev_holder = std::make_unique<sim::Engine>();
  auto& e = *ev_holder;
  auto forever = [](sim::Engine& eng) -> sim::Process {
    sim::Event never(eng);
    co_await never.wait();
  };
  auto p = sim::spawn(e, forever(e));
  e.run();
  EXPECT_FALSE(p.done());
  ev_holder.reset();  // must not crash or leak
}

// --- Event ----------------------------------------------------------------

namespace {

sim::Process wait_event(sim::Event& ev, std::vector<int>& out, int tag) {
  co_await ev.wait();
  out.push_back(tag);
}

}  // namespace

TEST(Event, SetWakesAllWaiters) {
  sim::Engine e;
  sim::Event ev(e);
  std::vector<int> out;
  sim::spawn(e, wait_event(ev, out, 1));
  sim::spawn(e, wait_event(ev, out, 2));
  e.schedule_at(100, [&] { ev.set(); });
  e.run();
  EXPECT_EQ(out, (std::vector<int>{1, 2}));
  EXPECT_EQ(e.now(), 100);
}

TEST(Event, WaitOnSignaledEventDoesNotSuspend) {
  sim::Engine e;
  sim::Event ev(e);
  ev.set();
  std::vector<int> out;
  sim::spawn(e, wait_event(ev, out, 9));
  e.run();
  EXPECT_EQ(out, (std::vector<int>{9}));
}

TEST(Event, ResetReArms) {
  sim::Engine e;
  sim::Event ev(e);
  ev.set();
  EXPECT_TRUE(ev.signaled());
  ev.reset();
  EXPECT_FALSE(ev.signaled());
  std::vector<int> out;
  sim::spawn(e, wait_event(ev, out, 1));
  e.run();
  EXPECT_TRUE(out.empty());
  ev.set();
  e.run();
  EXPECT_EQ(out, (std::vector<int>{1}));
}

TEST(Event, DoubleSetIsIdempotent) {
  sim::Engine e;
  sim::Event ev(e);
  std::vector<int> out;
  sim::spawn(e, wait_event(ev, out, 1));
  e.schedule_at(1, [&] { ev.set(); ev.set(); });
  e.run();
  EXPECT_EQ(out.size(), 1u);
}

// --- Queue ----------------------------------------------------------------

namespace {

sim::Process consume_n(sim::Queue<int>& q, std::vector<int>& out, int n) {
  for (int i = 0; i < n; ++i) {
    out.push_back(co_await q.pop());
  }
}

}  // namespace

TEST(Queue, PopReturnsPushedItemsInOrder) {
  sim::Engine e;
  sim::Queue<int> q(e);
  q.push(1);
  q.push(2);
  q.push(3);
  std::vector<int> out;
  sim::spawn(e, consume_n(q, out, 3));
  e.run();
  EXPECT_EQ(out, (std::vector<int>{1, 2, 3}));
}

TEST(Queue, PopSuspendsUntilPush) {
  sim::Engine e;
  sim::Queue<int> q(e);
  std::vector<int> out;
  sim::spawn(e, consume_n(q, out, 2));
  e.schedule_at(10, [&] { q.push(42); });
  e.schedule_at(20, [&] { q.push(43); });
  e.run();
  EXPECT_EQ(out, (std::vector<int>{42, 43}));
  EXPECT_EQ(e.now(), 20);
}

TEST(Queue, MultipleWaitersServedFifo) {
  sim::Engine e;
  sim::Queue<int> q(e);
  std::vector<int> got_a, got_b;
  sim::spawn(e, consume_n(q, got_a, 1));
  sim::spawn(e, consume_n(q, got_b, 1));
  e.run();
  EXPECT_EQ(q.waiter_count(), 2u);
  e.schedule_in(1, [&] { q.push(10); q.push(20); });
  e.run();
  EXPECT_EQ(got_a, (std::vector<int>{10}));
  EXPECT_EQ(got_b, (std::vector<int>{20}));
}

TEST(Queue, HandoffIsNotStolenBySameTimestampPop) {
  // Waiter W is woken by a push; a second pop arriving at the same
  // timestamp must not steal W's item.
  sim::Engine e;
  sim::Queue<int> q(e);
  std::vector<int> waiter_got, late_got;
  sim::spawn(e, consume_n(q, waiter_got, 1));
  e.run();  // waiter now suspended
  e.schedule_at(5, [&] { q.push(1); });
  e.schedule_at(5, [&] {
    // Late popper at same time: must get the *second* item.
    sim::spawn(e, consume_n(q, late_got, 1));
    q.push(2);
  });
  e.run();
  EXPECT_EQ(waiter_got, (std::vector<int>{1}));
  EXPECT_EQ(late_got, (std::vector<int>{2}));
}

// --- Rng -------------------------------------------------------------------

TEST(Rng, DeterministicForEqualSeeds) {
  sim::Rng a(12345), b(12345);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  sim::Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval) {
  sim::Rng r(7);
  double lo = 1.0, hi = 0.0, sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    double x = r.uniform();
    lo = std::min(lo, x);
    hi = std::max(hi, x);
    sum += x;
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
  }
  EXPECT_NEAR(sum / n, 0.5, 0.01);
  EXPECT_LT(lo, 0.01);
  EXPECT_GT(hi, 0.99);
}

TEST(Rng, UniformRange) {
  sim::Rng r(9);
  for (int i = 0; i < 1000; ++i) {
    double x = r.uniform(20.0, 30.0);
    ASSERT_GE(x, 20.0);
    ASSERT_LT(x, 30.0);
  }
}

TEST(Rng, UniformIntBounds) {
  sim::Rng r(11);
  std::vector<int> histogram(10, 0);
  for (int i = 0; i < 10000; ++i) {
    auto v = r.uniform_int(10);
    ASSERT_LT(v, 10u);
    ++histogram[v];
  }
  for (int count : histogram) EXPECT_GT(count, 700);  // roughly uniform
}

TEST(Rng, SplitStreamsAreIndependent) {
  sim::Rng parent(99);
  sim::Rng child1 = parent.split();
  sim::Rng child2 = parent.split();
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (child1.next_u64() == child2.next_u64());
  EXPECT_EQ(same, 0);
}

TEST(Rng, BernoulliProbability) {
  sim::Rng r(21);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += r.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}
