// Unit + integration tests for the telemetry subsystem: metrics registry,
// DVS decision log, time-series sampler, and the Prometheus / Chrome
// trace-event / CSV exporters.
#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "analysis/report.hpp"
#include "apps/npb.hpp"
#include "core/runner.hpp"
#include "core/strategies.hpp"
#include "service/json.hpp"
#include "sim/engine.hpp"
#include "telemetry/export.hpp"
#include "telemetry/hub.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/sampler.hpp"
#include "telemetry/snapshot.hpp"

using namespace pcd;
using telemetry::DvsCause;
using telemetry::Labels;

// ---- metrics registry -------------------------------------------------------

TEST(MetricsRegistry, CounterGaugeBasics) {
  telemetry::MetricsRegistry reg;
  auto& c = reg.counter("events_total");
  c.inc();
  c.inc(2.5);
  EXPECT_DOUBLE_EQ(c.value(), 3.5);
  auto& g = reg.gauge("level");
  g.set(7);
  g.add(-2);
  EXPECT_DOUBLE_EQ(g.value(), 5);
  EXPECT_EQ(reg.series_count(), 2u);
}

TEST(MetricsRegistry, LabelsInternOrderInsensitive) {
  telemetry::MetricsRegistry reg;
  auto& a = reg.counter("x_total", {{"node", "1"}, {"cause", "daemon"}});
  auto& b = reg.counter("x_total", {{"cause", "daemon"}, {"node", "1"}});
  EXPECT_EQ(&a, &b);  // same series
  auto& c = reg.counter("x_total", {{"node", "2"}, {"cause", "daemon"}});
  EXPECT_NE(&a, &c);
  EXPECT_EQ(reg.series_count(), 2u);
}

TEST(MetricsRegistry, TypeConflictThrows) {
  telemetry::MetricsRegistry reg;
  reg.counter("thing");
  EXPECT_THROW(reg.gauge("thing"), std::logic_error);
  EXPECT_THROW(reg.histogram("thing", {}, {1.0}), std::logic_error);
}

TEST(MetricsRegistry, HistogramCumulativeBuckets) {
  telemetry::MetricsRegistry reg;
  auto& h = reg.histogram("latency_seconds", {}, {0.001, 0.01, 0.1});
  h.observe(0.0005);
  h.observe(0.001);  // boundary counts in its own bucket (le semantics)
  h.observe(0.05);
  h.observe(5.0);    // above the top bound: only +Inf
  const auto& counts = h.bucket_counts();
  EXPECT_EQ(counts[0], 2);  // <= 0.001
  EXPECT_EQ(counts[1], 2);  // <= 0.01
  EXPECT_EQ(counts[2], 3);  // <= 0.1
  EXPECT_EQ(h.count(), 4);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0005 + 0.001 + 0.05 + 5.0);
  EXPECT_THROW(reg.histogram("bad", {}, {}), std::invalid_argument);
}

TEST(MetricsRegistry, SamplesFlattenEveryInstrument) {
  telemetry::MetricsRegistry reg;
  reg.counter("a_total", telemetry::label("node", std::int64_t{0})).inc();
  reg.gauge("b").set(2);
  reg.histogram("c", {}, {1.0}).observe(0.5);
  const auto samples = reg.samples();
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_EQ(samples[0].name, "a_total");
  EXPECT_DOUBLE_EQ(samples[0].value, 1);
  EXPECT_EQ(samples[2].type, telemetry::MetricType::Histogram);
  EXPECT_EQ(samples[2].count, 1);
}

// ---- decision log -----------------------------------------------------------

TEST(DecisionLog, RecordsAndCapsEntries) {
  telemetry::DecisionLog log(2);
  log.record({100, 0, 1400, 600, DvsCause::DaemonThreshold, 0.2, "down"});
  log.record({200, 1, 600, 1400, DvsCause::Internal, NAN, "up"});
  log.record({300, 0, 600, 800, DvsCause::Api, NAN, ""});
  EXPECT_EQ(log.entries().size(), 2u);
  EXPECT_EQ(log.dropped(), 1);
  EXPECT_TRUE(log.entries()[0].has_utilization());
  EXPECT_FALSE(log.entries()[1].has_utilization());
  EXPECT_EQ(log.for_node(0).size(), 1u);
}

TEST(Hub, DecisionAndTransitionCounters) {
  telemetry::Hub hub;
  hub.record_decision({50, 3, 1400, 600, DvsCause::External, NAN, "psetcpuspeed"});
  hub.record_transition({60, 3, 1400, 600});
  hub.record_transition({90, 3, 600, 800});
  EXPECT_EQ(hub.decisions().entries().size(), 1u);
  EXPECT_EQ(hub.transitions().size(), 2u);
  const auto snap = telemetry::make_snapshot(hub);
  EXPECT_DOUBLE_EQ(
      snap.metric_value("dvs_transitions_total", telemetry::label("node", 3)), 2);
  EXPECT_DOUBLE_EQ(snap.metric_value("dvs_decisions_total", {{"cause", "external"}}),
                   1);
  EXPECT_DOUBLE_EQ(snap.metric_value("no_such_metric", {}, -7), -7);
}

// ---- sampler ----------------------------------------------------------------

TEST(Sampler, PeriodicSamplesWithDerivedUtilization) {
  sim::Engine e;
  telemetry::MetricsRegistry reg;
  telemetry::SamplerParams params;
  params.period_s = 0.1;
  params.capacity = 100;
  // Fake node: busy half the time, 10 W CPU, frequency fixed.
  telemetry::TimeSeriesSampler sampler(
      e, 1, params,
      [&e](int) {
        telemetry::NodeProbe p;
        p.freq_mhz = 800;
        p.busy_weighted_ns = static_cast<double>(e.now()) * 0.5;
        p.watts_cpu = 10;
        p.watts_other = 5;
        return p;
      },
      &reg);
  sampler.start();
  e.run_until(sim::from_seconds(1.05));
  sampler.stop();
  EXPECT_EQ(sampler.ticks(), 10);
  const auto samples = sampler.samples(0);
  ASSERT_EQ(samples.size(), 10u);
  EXPECT_EQ(samples[0].t, sim::from_seconds(0.1));
  EXPECT_EQ(samples[0].freq_mhz, 800);
  EXPECT_NEAR(samples[0].utilization, 0.5, 1e-9);
  EXPECT_DOUBLE_EQ(samples[0].watts_total(), 15);
  // Gauges mirror the last sample.
  const auto snap_samples = reg.samples();
  bool found = false;
  for (const auto& s : snap_samples) {
    if (s.name == "node_power_watts") {
      found = true;
      EXPECT_DOUBLE_EQ(s.value, 15);
    }
  }
  EXPECT_TRUE(found);
}

TEST(Sampler, RingBufferOverwritesOldest) {
  telemetry::RingBuffer<int> ring(3);
  for (int i = 0; i < 5; ++i) ring.push(i);
  EXPECT_EQ(ring.size(), 3u);
  EXPECT_EQ(ring.overwritten(), 2);
  EXPECT_EQ(ring.to_vector(), (std::vector<int>{2, 3, 4}));
}

TEST(Sampler, StopCancelsFutureTicks) {
  sim::Engine e;
  telemetry::SamplerParams params;
  params.period_s = 0.1;
  telemetry::TimeSeriesSampler sampler(e, 1, params,
                                       [](int) { return telemetry::NodeProbe{}; });
  sampler.start();
  e.run_until(sim::from_seconds(0.25));
  sampler.stop();
  e.run();  // drains without sampler events
  EXPECT_EQ(sampler.ticks(), 2);
}

// ---- exporters --------------------------------------------------------------

namespace {

// Minimal JSON well-formedness check: braces/brackets balance outside of
// strings, and strings/escapes terminate.
bool json_balanced(const std::string& s) {
  int brace = 0, bracket = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (in_string) {
      if (c == '\\') ++i;
      else if (c == '"') in_string = false;
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': ++brace; break;
      case '}': --brace; break;
      case '[': ++bracket; break;
      case ']': --bracket; break;
      default: break;
    }
    if (brace < 0 || bracket < 0) return false;
  }
  return brace == 0 && bracket == 0 && !in_string;
}

// Extracts every `"ts":<number>` in order of appearance.
std::vector<double> extract_ts(const std::string& json) {
  std::vector<double> out;
  const std::string key = "\"ts\":";
  std::size_t pos = 0;
  while ((pos = json.find(key, pos)) != std::string::npos) {
    pos += key.size();
    out.push_back(std::stod(json.substr(pos)));
  }
  return out;
}

}  // namespace

TEST(Exporters, PrometheusTextExposition) {
  telemetry::Hub hub;
  hub.registry().counter("net_collisions_total").inc(4);
  hub.registry().gauge("node_power_watts", telemetry::label("node", 2)).set(23.5);
  hub.registry().histogram("d", {}, {1.0, 2.0}).observe(1.5);
  hub.record_transition({10, 0, 1400, 600});
  const std::string text = telemetry::to_prometheus(hub.registry());
  EXPECT_NE(text.find("# TYPE net_collisions_total counter"), std::string::npos);
  EXPECT_NE(text.find("net_collisions_total 4"), std::string::npos);
  EXPECT_NE(text.find("node_power_watts{node=\"2\"} 23.5"), std::string::npos);
  EXPECT_NE(text.find("dvs_transitions_total{node=\"0\"} 1"), std::string::npos);
  EXPECT_NE(text.find("d_bucket{le=\"+Inf\"} 1"), std::string::npos);
  EXPECT_NE(text.find("d_sum 1.5"), std::string::npos);
  EXPECT_NE(text.find("d_count 1"), std::string::npos);
}

TEST(Exporters, ChromeJsonShapeAndMonotoneTimestamps) {
  sim::Engine e;
  trace::Tracer tracer(e, 1);
  e.schedule_at(0, [&] {
    auto s = new trace::Tracer::Scope(tracer.scope(0, trace::Cat::Compute, "work"));
    e.schedule_at(5000, [s] { delete s; });
  });
  e.run();

  telemetry::Hub hub;
  hub.record_decision({1000, 0, 1400, 600, DvsCause::DaemonThreshold, 0.12,
                       "usage 0.120 < min 0.20: jump to lowest"});
  hub.record_transition({2000, 0, 1400, 600});
  auto snap = telemetry::make_snapshot(hub);
  telemetry::NodeSample sample;
  sample.t = 3000;
  sample.watts_cpu = 8;
  snap.series.push_back({sample});

  const std::string json = telemetry::to_chrome_json(snap, &tracer);
  EXPECT_TRUE(json_balanced(json));
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);  // tracer scope
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);  // DVS instant
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);  // power counter
  EXPECT_NE(json.find("dvs 1400->600"), std::string::npos);
  EXPECT_NE(json.find("\"utilization\":0.12"), std::string::npos);
  const auto ts = extract_ts(json);
  ASSERT_GE(ts.size(), 5u);
  for (std::size_t i = 1; i < ts.size(); ++i) EXPECT_GE(ts[i], ts[i - 1]);
}

TEST(Exporters, SeriesAndDecisionCsv) {
  telemetry::Hub hub;
  hub.record_decision({sim::from_seconds(1.5), 2, 1400, 800, DvsCause::Internal,
                       NAN, "before marked comm"});
  auto snap = telemetry::make_snapshot(hub);
  telemetry::NodeSample s;
  s.t = sim::from_seconds(0.5);
  s.freq_mhz = 1000;
  s.utilization = 0.25;
  s.watts_cpu = 10;
  snap.series.push_back({s});

  const std::string csv = telemetry::series_csv(snap);
  EXPECT_NE(csv.find("node,t_s,freq_mhz,utilization"), std::string::npos);
  EXPECT_NE(csv.find("0,0.500000000,1000,0.2500,10.000"), std::string::npos);

  const std::string dcsv = telemetry::decisions_csv(snap);
  EXPECT_NE(dcsv.find("t_s,node,from_mhz,to_mhz,cause"), std::string::npos);
  EXPECT_NE(dcsv.find("1.500000000,2,1400,800,internal,,\"before marked comm\""),
            std::string::npos);
}

// ---- end-to-end through the runner ------------------------------------------

namespace {

core::RunConfig daemon_telemetry_config() {
  core::RunConfig cfg;
  cfg.seed = 11;
  core::CpuspeedParams daemon;
  daemon.interval_s = 0.2;  // several polls within a tiny run
  cfg.daemon = daemon;
  cfg.collect_trace = true;
  cfg.telemetry.enabled = true;
  cfg.telemetry.sampler.period_s = 0.05;
  return cfg;
}

}  // namespace

TEST(RunnerTelemetry, SnapshotCarriesRegistryDecisionsAndSeries) {
  const auto r = core::run_workload(apps::make_ft(0.2), daemon_telemetry_config());
  ASSERT_TRUE(r.telemetry.has_value());
  const auto& t = *r.telemetry;

  // (b) Prometheus dump: dvs_transitions_total, net_collisions_total, and a
  // per-node power gauge are all present.
  const std::string prom = telemetry::to_prometheus(t.metrics);
  EXPECT_NE(prom.find("dvs_transitions_total{node=\"0\"}"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE net_collisions_total counter"), std::string::npos);
  EXPECT_NE(prom.find("node_power_watts{node=\"0\"}"), std::string::npos);

  // Registry totals agree with the runner's exact counters.
  double transitions = 0;
  for (const auto& s : t.metrics) {
    if (s.name == "dvs_transitions_total") transitions += s.value;
  }
  EXPECT_DOUBLE_EQ(transitions, static_cast<double>(r.dvs_transitions));
  EXPECT_DOUBLE_EQ(t.metric_value("net_collisions_total", {}, -1),
                   static_cast<double>(r.net_collisions));
  EXPECT_EQ(t.transitions.size(), static_cast<std::size_t>(r.dvs_transitions));

  // (c) Every CPUSPEED daemon decision carries the utilization sample that
  // caused it.
  ASSERT_FALSE(t.decisions.empty());
  int daemon_decisions = 0;
  for (const auto& d : t.decisions) {
    if (d.cause != DvsCause::DaemonThreshold) continue;
    ++daemon_decisions;
    ASSERT_TRUE(d.has_utilization());
    EXPECT_GE(d.utilization, 0.0);
    EXPECT_LE(d.utilization, 1.0);
    EXPECT_FALSE(d.detail.empty());
  }
  EXPECT_GT(daemon_decisions, 0);

  // Sampler series cover the run with per-component power.
  ASSERT_EQ(t.series.size(), static_cast<std::size_t>(apps::make_ft(0.2).ranks));
  ASSERT_FALSE(t.series[0].empty());
  for (const auto& s : t.series[0]) {
    EXPECT_GT(s.watts_total(), 0.0);
    EXPECT_GE(s.utilization, 0.0);
    EXPECT_LE(s.utilization, 1.0);
  }

  // (a) Chrome trace: well-formed, has scopes + instants, monotone ts.
  ASSERT_FALSE(t.chrome_trace_json.empty());
  EXPECT_TRUE(json_balanced(t.chrome_trace_json));
  EXPECT_NE(t.chrome_trace_json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(t.chrome_trace_json.find("\"ph\":\"i\""), std::string::npos);
  const auto ts = extract_ts(t.chrome_trace_json);
  ASSERT_GT(ts.size(), 10u);
  for (std::size_t i = 1; i < ts.size(); ++i) EXPECT_GE(ts[i], ts[i - 1]);
}

TEST(RunnerTelemetry, InternalAndExternalCausesAreAttributed) {
  core::RunConfig cfg;
  cfg.seed = 3;
  cfg.telemetry.enabled = true;
  cfg.telemetry.sample = false;
  cfg.static_mhz = 800;
  auto r = core::run_workload(apps::make_ep(0.05), cfg);
  ASSERT_TRUE(r.telemetry.has_value());
  ASSERT_FALSE(r.telemetry->decisions.empty());
  for (const auto& d : r.telemetry->decisions) {
    EXPECT_EQ(d.cause, DvsCause::External);
    EXPECT_EQ(d.to_mhz, 800);
  }

  core::RunConfig icfg;
  icfg.seed = 3;
  icfg.telemetry.enabled = true;
  icfg.telemetry.sample = false;
  icfg.hooks = core::internal_phase_hooks(1400, 600);
  const auto ir = core::run_workload(apps::make_ft(0.1), icfg);
  ASSERT_TRUE(ir.telemetry.has_value());
  bool saw_internal = false;
  for (const auto& d : ir.telemetry->decisions) {
    if (d.cause == DvsCause::Internal) saw_internal = true;
  }
  EXPECT_TRUE(saw_internal);
}

TEST(RunnerTelemetry, MeterCountersAreWired) {
  core::RunConfig cfg;
  cfg.seed = 5;
  cfg.telemetry.enabled = true;
  cfg.use_meters = true;
  const auto r = core::run_workload(apps::make_cg(0.1), cfg);
  ASSERT_TRUE(r.telemetry.has_value());
  // The 5-minute discharge alone guarantees ACPI refreshes and Baytech
  // windows.
  EXPECT_GT(r.telemetry->metric_value("acpi_refreshes_total",
                                      telemetry::label("node", 0), -1),
            0.0);
  EXPECT_GT(r.telemetry->metric_value("baytech_windows_total", {}, -1), 0.0);
}

TEST(RunnerTelemetry, TelemetryDoesNotPerturbTheRun) {
  core::RunConfig off;
  off.seed = 21;
  core::CpuspeedParams daemon;
  off.daemon = daemon;
  core::RunConfig on = off;
  on.telemetry.enabled = true;
  on.telemetry.sampler.period_s = 0.01;  // aggressive sampling
  const auto a = core::run_workload(apps::make_ft(0.2), off);
  const auto b = core::run_workload(apps::make_ft(0.2), on);
  EXPECT_DOUBLE_EQ(a.delay_s, b.delay_s);
  EXPECT_DOUBLE_EQ(a.energy_j, b.energy_j);
  EXPECT_EQ(a.dvs_transitions, b.dvs_transitions);
  EXPECT_EQ(a.net_collisions, b.net_collisions);
}

// ---- strict JSON validation of the Chrome/Perfetto export -------------------
//
// The exporter output is validated with the campaign service's strict JSON
// parser (service/json.hpp) — one RFC 8259 implementation shared by the
// wire protocol, the result cache, and these tests.

TEST(Exporters, ProfiledRunChromeJsonParsesStrictly) {
  core::RunConfig cfg;
  cfg.seed = 7;
  cfg.profile = true;
  cfg.telemetry.enabled = true;
  cfg.telemetry.sample = false;
  const auto r = core::run_workload(apps::make_ft(0.1), cfg);
  ASSERT_TRUE(r.telemetry.has_value());
  const std::string& json = r.telemetry->chrome_trace_json;
  ASSERT_FALSE(json.empty());

  pcd::service::JsonError err;
  EXPECT_TRUE(pcd::service::json_parse(json, &err).has_value())
      << "JSON violation near offset " << err.pos << " (" << err.message
      << "): ..." << json.substr(err.pos > 40 ? err.pos - 40 : 0, 80);

  // Profiled slices carry energy; message edges appear as flow events.
  EXPECT_NE(json.find("\"energy_j\":"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(json.find("\"bp\":\"e\""), std::string::npos);
}

TEST(Exporters, PrometheusHelpAndLabelEscapingRoundTrip) {
  telemetry::MetricsRegistry reg;
  reg.set_help("odd_total", "counts \\ weird\nthings");
  reg.counter("odd_total", {{"path", "a\\b\"c\nd"}}).inc();
  const std::string text = telemetry::to_prometheus(reg);

  // HELP escapes only backslash and newline.
  EXPECT_NE(text.find("# HELP odd_total counts \\\\ weird\\nthings"),
            std::string::npos);
  // Label values escape backslash, double quote, and newline.
  EXPECT_NE(text.find("odd_total{path=\"a\\\\b\\\"c\\nd\"} 1"), std::string::npos);

  // Round-trip: unescape the emitted label value and recover the original.
  const std::string needle = "path=\"";
  const auto start = text.find(needle) + needle.size();
  const auto quote_end = text.find("\"}", start);
  const std::string escaped = text.substr(start, quote_end - start);
  std::string unescaped;
  for (std::size_t i = 0; i < escaped.size(); ++i) {
    if (escaped[i] == '\\' && i + 1 < escaped.size()) {
      ++i;
      unescaped += escaped[i] == 'n' ? '\n' : escaped[i];
    } else {
      unescaped += escaped[i];
    }
  }
  EXPECT_EQ(unescaped, "a\\b\"c\nd");
}

TEST(Exporters, RunnerRegistersHelpForRunMetrics) {
  core::RunConfig cfg;
  cfg.seed = 9;
  cfg.telemetry.enabled = true;
  cfg.telemetry.sample = false;
  const auto r = core::run_workload(apps::make_ep(0.05), cfg);
  ASSERT_TRUE(r.telemetry.has_value());
  const std::string prom = telemetry::to_prometheus(r.telemetry->metrics);
  EXPECT_NE(prom.find("# HELP run_delay_seconds"), std::string::npos);
  EXPECT_NE(prom.find("# HELP run_energy_joules"), std::string::npos);
  EXPECT_NE(prom.find("# HELP mpi_messages_total"), std::string::npos);
  EXPECT_NE(prom.find("# HELP net_bytes_total"), std::string::npos);
}

TEST(RunnerTelemetry, RunSummaryRendersTables) {
  const auto r = core::run_workload(apps::make_ft(0.2), daemon_telemetry_config());
  const auto out = analysis::render_run_summary(r, 10);
  EXPECT_NE(out.find("run summary: FT"), std::string::npos);
  EXPECT_NE(out.find("top metrics"), std::string::npos);
  EXPECT_NE(out.find("dvs decisions"), std::string::npos);
  EXPECT_NE(out.find("per-rank comm/compute balance"), std::string::npos);
  EXPECT_NE(out.find("daemon"), std::string::npos);
}
