// Unit tests for the MPE-style tracer, profile analysis, and trace export.
#include <gtest/gtest.h>

#include <memory>
#include <utility>

#include "sim/engine.hpp"
#include "trace/export.hpp"
#include "trace/profile.hpp"
#include "trace/tracer.hpp"

namespace sim = pcd::sim;
using pcd::trace::Cat;
using pcd::trace::Tracer;

TEST(Tracer, RecordsScopeDurations) {
  sim::Engine e;
  Tracer t(e, 2);
  e.schedule_at(0, [&] {
    auto s = t.scope(0, Cat::Compute, "loop");
    e.schedule_at(100, [sc = std::make_shared<Tracer::Scope>(std::move(s))] {});
  });
  e.run();
  ASSERT_EQ(t.records(0).size(), 1u);
  EXPECT_EQ(t.records(0)[0].begin, 0);
  EXPECT_EQ(t.records(0)[0].end, 100);
  EXPECT_EQ(t.records(0)[0].cat, Cat::Compute);
}

TEST(Tracer, DisabledTracerRecordsNothing) {
  sim::Engine e;
  Tracer t(e, 1, /*enabled=*/false);
  { auto s = t.scope(0, Cat::Send, "x", 1, 100); }
  EXPECT_TRUE(t.records(0).empty());
}

TEST(Tracer, NestedCommScopesAreSuppressed) {
  sim::Engine e;
  Tracer t(e, 1);
  {
    auto outer = t.scope(0, Cat::Collective, "alltoall");
    {
      auto inner = t.scope(0, Cat::Send, "p2p");  // suppressed
      auto inner2 = t.scope(0, Cat::Wait, "wait");  // suppressed
    }
  }
  ASSERT_EQ(t.records(0).size(), 1u);
  EXPECT_EQ(t.records(0)[0].cat, Cat::Collective);
}

TEST(Tracer, ComputeInsideCommIsStillRecorded) {
  sim::Engine e;
  Tracer t(e, 1);
  {
    auto outer = t.scope(0, Cat::Wait, "wait");
    auto inner = t.scope(0, Cat::Compute, "overlap");  // not a comm category
  }
  EXPECT_EQ(t.records(0).size(), 2u);
}

TEST(Tracer, CommDepthResetsAfterScopeEnds) {
  sim::Engine e;
  Tracer t(e, 1);
  { auto a = t.scope(0, Cat::Send, "a"); }
  { auto b = t.scope(0, Cat::Recv, "b"); }  // must not be suppressed
  EXPECT_EQ(t.records(0).size(), 2u);
}

TEST(Tracer, MovedFromScopeIsInert) {
  // Regression: the move constructor must reset the source's active_ /
  // counted_comm_ flags along with its tracer pointer — a stale flag would
  // double-decrement comm_depth_ or double-record when the moved-from scope
  // is destroyed.
  sim::Engine e;
  Tracer t(e, 1);
  {
    auto a = t.scope(0, Cat::Send, "outer");
    {
      Tracer::Scope b(std::move(a));
      // While the moved-to scope is alive, nested comm is still suppressed.
      { auto inner = t.scope(0, Cat::Recv, "inner"); }
      ASSERT_EQ(t.records(0).size(), 0u);
    }  // b closes: records "outer", comm depth back to 0
    ASSERT_EQ(t.records(0).size(), 1u);
  }  // a (moved-from) destroyed: must not record or touch comm depth
  ASSERT_EQ(t.records(0).size(), 1u);
  EXPECT_STREQ(t.records(0)[0].label, "outer");
  // Comm depth balanced: a fresh comm scope records normally.
  { auto c = t.scope(0, Cat::Send, "after"); }
  ASSERT_EQ(t.records(0).size(), 2u);
  EXPECT_STREQ(t.records(0)[1].label, "after");
}

TEST(Tracer, MovedFromScopeOutlivesTarget) {
  // Same bookkeeping, destruction order reversed: the moved-from object
  // outlives the moved-to one.
  sim::Engine e;
  Tracer t(e, 1);
  auto a = std::make_unique<Tracer::Scope>(t.scope(0, Cat::Collective, "a2a"));
  {
    Tracer::Scope b(std::move(*a));
  }  // records here
  ASSERT_EQ(t.records(0).size(), 1u);
  a.reset();  // inert
  EXPECT_EQ(t.records(0).size(), 1u);
  { auto c = t.scope(0, Cat::Wait, "w"); }  // not suppressed
  EXPECT_EQ(t.records(0).size(), 2u);
}

TEST(Tracer, IterationMarks) {
  sim::Engine e;
  Tracer t(e, 1);
  t.mark_iteration(0);
  e.schedule_at(1000, [&] { t.mark_iteration(0); });
  e.schedule_at(2000, [&] { t.mark_iteration(0); });
  e.run();
  ASSERT_EQ(t.iteration_marks(0).size(), 3u);
  auto p = pcd::trace::analyze(t);
  EXPECT_EQ(p.iterations, 2);
  EXPECT_DOUBLE_EQ(p.mean_iteration_s, 1e-6);
}

TEST(Tracer, ClearEmptiesRecords) {
  sim::Engine e;
  Tracer t(e, 1);
  { auto s = t.scope(0, Cat::Compute); }
  t.mark_iteration(0);
  t.clear();
  EXPECT_TRUE(t.records(0).empty());
  EXPECT_TRUE(t.iteration_marks(0).empty());
}

TEST(Profile, AggregatesPerCategory) {
  sim::Engine e;
  Tracer t(e, 2);
  e.schedule_at(0, [&] {
    auto s = new Tracer::Scope(t.scope(0, Cat::Compute));
    e.schedule_at(3 * sim::kSecond, [s] { delete s; });
    auto w = new Tracer::Scope(t.scope(1, Cat::Wait, "w"));
    e.schedule_at(1 * sim::kSecond, [w] { delete w; });
  });
  e.run();
  auto p = pcd::trace::analyze(t);
  EXPECT_DOUBLE_EQ(p.ranks[0].compute_s, 3.0);
  EXPECT_DOUBLE_EQ(p.ranks[1].wait_s, 1.0);
  EXPECT_EQ(p.ranks[1].waits, 1);
  EXPECT_DOUBLE_EQ(p.ranks[0].comm_s(), 0.0);
  EXPECT_GT(p.ranks[1].comm_s(), 0.0);
}

TEST(Profile, CommToCompRatio) {
  pcd::trace::RankProfile r;
  r.compute_s = 1.0;
  r.memstall_s = 1.0;
  r.collective_s = 4.0;
  EXPECT_DOUBLE_EQ(r.comm_to_comp(), 2.0);
}

TEST(Profile, ImbalanceZeroWhenEqual) {
  pcd::trace::TraceProfile p;
  for (int i = 0; i < 4; ++i) {
    pcd::trace::RankProfile r;
    r.compute_s = 5.0;
    p.ranks.push_back(r);
  }
  EXPECT_DOUBLE_EQ(p.imbalance(), 0.0);
  p.ranks[0].compute_s = 10.0;  // mean 6.25, worst dev 3.75
  EXPECT_NEAR(p.imbalance(), 3.75 / 6.25, 1e-12);
}

TEST(Timeline, RendersRowsAndLegend) {
  sim::Engine e;
  Tracer t(e, 2);
  e.schedule_at(0, [&] {
    auto s = new Tracer::Scope(t.scope(0, Cat::Compute));
    e.schedule_at(100, [s] { delete s; });
    auto w = new Tracer::Scope(t.scope(1, Cat::Collective, "a2a"));
    e.schedule_at(100, [w] { delete w; });
  });
  e.run();
  const auto out = pcd::trace::render_timeline(t, 40);
  EXPECT_NE(out.find("r0"), std::string::npos);
  EXPECT_NE(out.find("r1"), std::string::npos);
  EXPECT_NE(out.find('#'), std::string::npos);
  EXPECT_NE(out.find('A'), std::string::npos);
  EXPECT_NE(out.find("legend"), std::string::npos);
}

TEST(Timeline, EmptyTraceIsHandled) {
  sim::Engine e;
  Tracer t(e, 1);
  EXPECT_EQ(pcd::trace::render_timeline(t), "(empty trace)\n");
}

TEST(Profile, RenderProfileContainsTotals) {
  sim::Engine e;
  Tracer t(e, 1);
  { auto s = t.scope(0, Cat::Compute); }
  auto p = pcd::trace::analyze(t);
  const auto out = pcd::trace::render_profile(p);
  EXPECT_NE(out.find("comm/comp"), std::string::npos);
  EXPECT_NE(out.find("imbalance"), std::string::npos);
}

TEST(Export, CsvGoldenTinyScriptedRun) {
  sim::Engine e;
  Tracer t(e, 2);
  e.schedule_at(0, [&] {
    auto c = new Tracer::Scope(t.scope(0, Cat::Compute, "fft"));
    e.schedule_at(1500, [c] { delete c; });
  });
  e.schedule_at(2000, [&] {
    auto s = new Tracer::Scope(t.scope(1, Cat::Send, "p2p", /*peer=*/0,
                                       /*bytes=*/4096));
    e.schedule_at(2500, [s] { delete s; });
  });
  e.run();
  const std::string expected =
      "rank,category,label,begin_ns,end_ns,duration_ns,peer,bytes\n"
      "0,Compute,fft,0,1500,1500,-1,0\n"
      "1,Send,p2p,2000,2500,500,0,4096\n";
  EXPECT_EQ(pcd::trace::export_csv(t), expected);
}

TEST(Export, HistogramBucketEdgesAtPowersOfTwoMicroseconds) {
  sim::Engine e;
  Tracer t(e, 1);
  // Durations in ns; exact powers of two microseconds must land in the
  // bucket they open ([2^k, 2^(k+1)) µs), and sub-µs durations in bucket 0.
  const std::int64_t durations[] = {1000, 2000, 4000, 8000, 1999, 1};
  sim::SimTime start = 0;
  for (const std::int64_t dur : durations) {
    e.schedule_at(start, [&t, &e, dur] {
      auto s = new Tracer::Scope(t.scope(0, Cat::Collective, "a2a"));
      e.schedule_at(e.now() + dur, [s] { delete s; });
    });
    start += dur + 10000;  // gap: comm scopes must not nest (suppression)
  }
  e.run();
  const auto h = pcd::trace::histogram(t, 0, Cat::Collective);
  EXPECT_EQ(h.total, 6);
  ASSERT_EQ(h.bucket_counts.size(), 4u);
  EXPECT_EQ(h.bucket_counts.at(0), 3);  // 1 µs, 1.999 µs, 1 ns
  EXPECT_EQ(h.bucket_counts.at(1), 1);  // exactly 2 µs
  EXPECT_EQ(h.bucket_counts.at(2), 1);  // exactly 4 µs
  EXPECT_EQ(h.bucket_counts.at(3), 1);  // exactly 8 µs
  EXPECT_NEAR(h.total_s, 17.0e-6, 1e-12);
  EXPECT_DOUBLE_EQ(h.typical_us(), 1.5);  // median bucket 0, midpoint 1.5 µs
}

TEST(Export, HistogramFiltersByRankAndCategory) {
  sim::Engine e;
  Tracer t(e, 2);
  e.schedule_at(0, [&] {
    auto a = new Tracer::Scope(t.scope(0, Cat::Send, "s"));
    e.schedule_at(3000, [a] { delete a; });
    auto b = new Tracer::Scope(t.scope(1, Cat::Send, "s"));
    e.schedule_at(5000, [b] { delete b; });
  });
  e.schedule_at(10000, [&] {
    auto c = new Tracer::Scope(t.scope(0, Cat::Compute, "x"));
    e.schedule_at(11000, [c] { delete c; });
  });
  e.run();
  EXPECT_EQ(pcd::trace::histogram(t, 0, Cat::Send).total, 1);
  EXPECT_EQ(pcd::trace::histogram(t, 1, Cat::Send).total, 1);
  EXPECT_EQ(pcd::trace::histogram(t, 0, Cat::Collective).total, 0);
  EXPECT_DOUBLE_EQ(pcd::trace::histogram(t, 1, Cat::Collective).typical_us(), 0);
}
