// Unit tests for the MPE-style tracer and profile analysis.
#include <gtest/gtest.h>

#include "sim/engine.hpp"
#include "trace/profile.hpp"
#include "trace/tracer.hpp"

namespace sim = pcd::sim;
using pcd::trace::Cat;
using pcd::trace::Tracer;

TEST(Tracer, RecordsScopeDurations) {
  sim::Engine e;
  Tracer t(e, 2);
  e.schedule_at(0, [&] {
    auto s = t.scope(0, Cat::Compute, "loop");
    e.schedule_at(100, [sc = std::make_shared<Tracer::Scope>(std::move(s))] {});
  });
  e.run();
  ASSERT_EQ(t.records(0).size(), 1u);
  EXPECT_EQ(t.records(0)[0].begin, 0);
  EXPECT_EQ(t.records(0)[0].end, 100);
  EXPECT_EQ(t.records(0)[0].cat, Cat::Compute);
}

TEST(Tracer, DisabledTracerRecordsNothing) {
  sim::Engine e;
  Tracer t(e, 1, /*enabled=*/false);
  { auto s = t.scope(0, Cat::Send, "x", 1, 100); }
  EXPECT_TRUE(t.records(0).empty());
}

TEST(Tracer, NestedCommScopesAreSuppressed) {
  sim::Engine e;
  Tracer t(e, 1);
  {
    auto outer = t.scope(0, Cat::Collective, "alltoall");
    {
      auto inner = t.scope(0, Cat::Send, "p2p");  // suppressed
      auto inner2 = t.scope(0, Cat::Wait, "wait");  // suppressed
    }
  }
  ASSERT_EQ(t.records(0).size(), 1u);
  EXPECT_EQ(t.records(0)[0].cat, Cat::Collective);
}

TEST(Tracer, ComputeInsideCommIsStillRecorded) {
  sim::Engine e;
  Tracer t(e, 1);
  {
    auto outer = t.scope(0, Cat::Wait, "wait");
    auto inner = t.scope(0, Cat::Compute, "overlap");  // not a comm category
  }
  EXPECT_EQ(t.records(0).size(), 2u);
}

TEST(Tracer, CommDepthResetsAfterScopeEnds) {
  sim::Engine e;
  Tracer t(e, 1);
  { auto a = t.scope(0, Cat::Send, "a"); }
  { auto b = t.scope(0, Cat::Recv, "b"); }  // must not be suppressed
  EXPECT_EQ(t.records(0).size(), 2u);
}

TEST(Tracer, IterationMarks) {
  sim::Engine e;
  Tracer t(e, 1);
  t.mark_iteration(0);
  e.schedule_at(1000, [&] { t.mark_iteration(0); });
  e.schedule_at(2000, [&] { t.mark_iteration(0); });
  e.run();
  ASSERT_EQ(t.iteration_marks(0).size(), 3u);
  auto p = pcd::trace::analyze(t);
  EXPECT_EQ(p.iterations, 2);
  EXPECT_DOUBLE_EQ(p.mean_iteration_s, 1e-6);
}

TEST(Tracer, ClearEmptiesRecords) {
  sim::Engine e;
  Tracer t(e, 1);
  { auto s = t.scope(0, Cat::Compute); }
  t.mark_iteration(0);
  t.clear();
  EXPECT_TRUE(t.records(0).empty());
  EXPECT_TRUE(t.iteration_marks(0).empty());
}

TEST(Profile, AggregatesPerCategory) {
  sim::Engine e;
  Tracer t(e, 2);
  e.schedule_at(0, [&] {
    auto s = new Tracer::Scope(t.scope(0, Cat::Compute));
    e.schedule_at(3 * sim::kSecond, [s] { delete s; });
    auto w = new Tracer::Scope(t.scope(1, Cat::Wait, "w"));
    e.schedule_at(1 * sim::kSecond, [w] { delete w; });
  });
  e.run();
  auto p = pcd::trace::analyze(t);
  EXPECT_DOUBLE_EQ(p.ranks[0].compute_s, 3.0);
  EXPECT_DOUBLE_EQ(p.ranks[1].wait_s, 1.0);
  EXPECT_EQ(p.ranks[1].waits, 1);
  EXPECT_DOUBLE_EQ(p.ranks[0].comm_s(), 0.0);
  EXPECT_GT(p.ranks[1].comm_s(), 0.0);
}

TEST(Profile, CommToCompRatio) {
  pcd::trace::RankProfile r;
  r.compute_s = 1.0;
  r.memstall_s = 1.0;
  r.collective_s = 4.0;
  EXPECT_DOUBLE_EQ(r.comm_to_comp(), 2.0);
}

TEST(Profile, ImbalanceZeroWhenEqual) {
  pcd::trace::TraceProfile p;
  for (int i = 0; i < 4; ++i) {
    pcd::trace::RankProfile r;
    r.compute_s = 5.0;
    p.ranks.push_back(r);
  }
  EXPECT_DOUBLE_EQ(p.imbalance(), 0.0);
  p.ranks[0].compute_s = 10.0;  // mean 6.25, worst dev 3.75
  EXPECT_NEAR(p.imbalance(), 3.75 / 6.25, 1e-12);
}

TEST(Timeline, RendersRowsAndLegend) {
  sim::Engine e;
  Tracer t(e, 2);
  e.schedule_at(0, [&] {
    auto s = new Tracer::Scope(t.scope(0, Cat::Compute));
    e.schedule_at(100, [s] { delete s; });
    auto w = new Tracer::Scope(t.scope(1, Cat::Collective, "a2a"));
    e.schedule_at(100, [w] { delete w; });
  });
  e.run();
  const auto out = pcd::trace::render_timeline(t, 40);
  EXPECT_NE(out.find("r0"), std::string::npos);
  EXPECT_NE(out.find("r1"), std::string::npos);
  EXPECT_NE(out.find('#'), std::string::npos);
  EXPECT_NE(out.find('A'), std::string::npos);
  EXPECT_NE(out.find("legend"), std::string::npos);
}

TEST(Timeline, EmptyTraceIsHandled) {
  sim::Engine e;
  Tracer t(e, 1);
  EXPECT_EQ(pcd::trace::render_timeline(t), "(empty trace)\n");
}

TEST(Profile, RenderProfileContainsTotals) {
  sim::Engine e;
  Tracer t(e, 1);
  { auto s = t.scope(0, Cat::Compute); }
  auto p = pcd::trace::analyze(t);
  const auto out = pcd::trace::render_profile(p);
  EXPECT_NE(out.find("comm/comp"), std::string::npos);
  EXPECT_NE(out.find("imbalance"), std::string::npos);
}
