#!/usr/bin/env python3
"""Fail if engine microbenchmark throughput regressed vs the checked-in baseline.

Usage:
    check_bench_regression.py BASELINE.json CANDIDATE.json
        [--prefix BM_EngineScheduleRun] [--max-regress 0.20]
        [--candidate-prefix BM_...]

Both files are google-benchmark --benchmark_out JSON.  For every benchmark in
the baseline whose name starts with --prefix, the candidate must reach at
least (1 - max_regress) x the baseline's items_per_second.  Benchmarks
missing from the candidate fail loudly: a silently dropped benchmark would
otherwise read as "no regression".

--candidate-prefix compares *differently named* benchmarks from the same
run: the candidate counterpart of baseline "PREFIX<suffix>" is looked up as
"CANDIDATE_PREFIX<suffix>".  This is how CI gates the profiler's overhead
(BM_WorkloadRun_ProfilerOn vs BM_WorkloadRun_ProfilerOff, both from one
bench_micro_profiler run passed as baseline and candidate).

Both files must come from optimized (Release-family) builds: comparing a
debug binary's throughput against a release baseline — or blessing a debug
baseline — makes the gate meaningless, so a non-release context fails fast
with exit 2.  The bench binaries stamp their own compile mode into
context.build_type; for files that predate that field, the library's
library_build_type is consulted instead.

Exit codes: 0 ok, 1 regression or missing benchmark, 2 bad input
(including a debug/unknown build type in either file).
"""

import argparse
import json
import sys

# CMake build types with optimization enabled.  Anything else (Debug, an
# empty CMAKE_BUILD_TYPE, "unknown") measures unoptimized code.
OPTIMIZED_BUILD_TYPES = {"release", "relwithdebinfo", "minsizerel"}


def require_release_build(path, doc):
    ctx = doc.get("context", {})
    source = "build_type"
    build = ctx.get("build_type")
    if build is None:
        source = "library_build_type"
        build = ctx.get("library_build_type")
    if build is None:
        print(
            f"error: {path}: context records no build_type; regenerate it "
            f"from a -DCMAKE_BUILD_TYPE=Release build (the bench binaries "
            f"stamp context.build_type)",
            file=sys.stderr,
        )
        sys.exit(2)
    if str(build).lower() not in OPTIMIZED_BUILD_TYPES:
        print(
            f"error: {path}: context.{source} is {build!r}, not an optimized "
            f"(Release-family) build — throughput from unoptimized binaries "
            f"cannot gate anything; rebuild with -DCMAKE_BUILD_TYPE=Release "
            f"and regenerate",
            file=sys.stderr,
        )
        sys.exit(2)


def load_items_per_second(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    require_release_build(path, doc)
    out = {}
    for b in doc.get("benchmarks", []):
        # Skip aggregate rows (mean/median/stddev) so --benchmark_repetitions
        # output compares repetition medians only once, via run_name.
        if b.get("run_type") == "aggregate" and b.get("aggregate_name") != "median":
            continue
        name = b.get("run_name", b.get("name"))
        if "items_per_second" in b:
            out[name] = float(b["items_per_second"])
    return out


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("candidate")
    ap.add_argument("--prefix", default="BM_EngineScheduleRun")
    ap.add_argument("--max-regress", type=float, default=0.20)
    ap.add_argument("--candidate-prefix", default=None,
                    help="look up the candidate as this prefix + the "
                         "baseline name's suffix (default: same name)")
    args = ap.parse_args()

    base = load_items_per_second(args.baseline)
    cand = load_items_per_second(args.candidate)

    checked = 0
    failed = False
    for name, base_ips in sorted(base.items()):
        if not name.startswith(args.prefix):
            continue
        checked += 1
        cand_name = name
        if args.candidate_prefix is not None:
            cand_name = args.candidate_prefix + name[len(args.prefix):]
        if cand_name not in cand:
            print(f"FAIL {cand_name}: missing from candidate run")
            failed = True
            continue
        floor = base_ips * (1.0 - args.max_regress)
        ratio = cand[cand_name] / base_ips
        status = "FAIL" if cand[cand_name] < floor else "ok"
        label = name if cand_name == name else f"{cand_name} vs {name}"
        print(
            f"{status:4} {label}: {cand[cand_name] / 1e6:.2f}M/s vs baseline "
            f"{base_ips / 1e6:.2f}M/s ({ratio:.2f}x, floor {floor / 1e6:.2f}M/s)"
        )
        if cand[cand_name] < floor:
            failed = True

    if checked == 0:
        print(f"error: no baseline benchmarks match prefix {args.prefix!r}",
              file=sys.stderr)
        sys.exit(2)
    sys.exit(1 if failed else 0)


if __name__ == "__main__":
    main()
