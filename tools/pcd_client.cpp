// pcd_client: submit a campaign to a running pcd_service and print the TSV.
//
//   pcd_client --socket /tmp/pcd.sock --workload FT --workload CG \
//              --static 1400 --daemon v1.2.1 --trials 3 --scale 0.02 \
//              [--seed N] [--deadline-s S] [--budget-s S] [--no-digests] \
//              [--spec FILE] [--op ping|stats|submit|shutdown] [--quiet]
//
// The request is strict line-delimited JSON (service/json.hpp — the same
// parser the server and the exporter tests use).  While the submission is
// in flight the client polls {"op":"stats"} on a second connection and
// reports queue depth to stderr; the result TSV goes to stdout and a
// one-line machine-readable summary (status, fingerprint, cache hit ratio,
// throughput) goes to stderr — CI greps it.
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "service/json.hpp"

namespace {

using pcd::service::JsonValue;

int connect_unix(const std::string& path, std::string* error) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    *error = "socket path too long";
    return -1;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    *error = std::strerror(errno);
    return -1;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    *error = std::string("connect ") + path + ": " + std::strerror(errno);
    ::close(fd);
    return -1;
  }
  return fd;
}

bool send_line(int fd, const std::string& line) {
  const std::string data = line + "\n";
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off, 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

/// Reads one '\n'-terminated line; between reads, waits in poll() and calls
/// `on_tick` roughly every 200 ms (progress polling).  Empty optional on
/// EOF/error.
std::optional<std::string> read_line(int fd, const std::function<void()>& on_tick) {
  std::string buffer;
  char chunk[4096];
  for (;;) {
    pollfd pfd{fd, POLLIN, 0};
    const int pr = ::poll(&pfd, 1, 200);
    if (pr < 0) {
      if (errno == EINTR) continue;
      return std::nullopt;
    }
    if (pr == 0) {
      if (on_tick) on_tick();
      continue;
    }
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return std::nullopt;
    buffer.append(chunk, static_cast<std::size_t>(n));
    const std::size_t nl = buffer.find('\n');
    if (nl != std::string::npos) return buffer.substr(0, nl);
  }
}

/// One request/response exchange on a fresh connection (stats polling).
std::optional<JsonValue> one_shot(const std::string& socket_path,
                                  const std::string& line) {
  std::string err;
  const int fd = connect_unix(socket_path, &err);
  if (fd < 0) return std::nullopt;
  std::optional<JsonValue> out;
  if (send_line(fd, line)) {
    if (auto reply = read_line(fd, nullptr); reply.has_value()) {
      out = pcd::service::json_parse(*reply);
    }
  }
  ::close(fd);
  return out;
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --socket PATH [--spec FILE] [--workload NAME]...\n"
               "          [--static MHZ]... [--daemon v1.1|v1.2.1]...\n"
               "          [--scale S] [--trials N] [--seed N] [--no-digests]\n"
               "          [--deadline-s S] [--budget-s S]\n"
               "          [--op ping|stats|submit|shutdown] [--quiet]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path, spec_file, op = "submit";
  std::vector<std::string> workloads, daemons;
  std::vector<int> statics;
  double scale = -1, deadline_s = -1, budget_s = -1;
  long long trials = -1, seed = -1;
  bool no_digests = false, quiet = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (arg == "--socket" && (v = next())) socket_path = v;
    else if (arg == "--spec" && (v = next())) spec_file = v;
    else if (arg == "--workload" && (v = next())) workloads.push_back(v);
    else if (arg == "--static" && (v = next())) statics.push_back(std::atoi(v));
    else if (arg == "--daemon" && (v = next())) daemons.push_back(v);
    else if (arg == "--scale" && (v = next())) scale = std::atof(v);
    else if (arg == "--trials" && (v = next())) trials = std::atoll(v);
    else if (arg == "--seed" && (v = next())) seed = std::atoll(v);
    else if (arg == "--deadline-s" && (v = next())) deadline_s = std::atof(v);
    else if (arg == "--budget-s" && (v = next())) budget_s = std::atof(v);
    else if (arg == "--no-digests") no_digests = true;
    else if (arg == "--op" && (v = next())) op = v;
    else if (arg == "--quiet") quiet = true;
    else return usage(argv[0]);
  }
  if (socket_path.empty()) return usage(argv[0]);

  // Build the request object: spec file first, inline flags override.
  JsonValue req = JsonValue::object();
  if (!spec_file.empty()) {
    std::ifstream in(spec_file);
    if (!in) {
      std::fprintf(stderr, "pcd_client: cannot read %s\n", spec_file.c_str());
      return 1;
    }
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    pcd::service::JsonError jerr;
    auto parsed = pcd::service::json_parse(text, &jerr);
    if (!parsed.has_value() || !parsed->is_object()) {
      std::fprintf(stderr, "pcd_client: %s: bad JSON at byte %zu: %s\n",
                   spec_file.c_str(), jerr.pos, jerr.message.c_str());
      return 1;
    }
    req = std::move(*parsed);
  }
  req.set("op", JsonValue::of(op));
  if (!workloads.empty()) {
    JsonValue ws = JsonValue::array();
    for (const auto& w : workloads) ws.push(JsonValue::of(w));
    req.set("workloads", std::move(ws));
  }
  if (!statics.empty() || !daemons.empty()) {
    JsonValue ss = JsonValue::array();
    for (int mhz : statics) {
      JsonValue p = JsonValue::object();
      p.set("static_mhz", JsonValue::of(mhz));
      ss.push(std::move(p));
    }
    for (const auto& d : daemons) {
      JsonValue p = JsonValue::object();
      p.set("daemon", JsonValue::of(d));
      ss.push(std::move(p));
    }
    req.set("strategies", std::move(ss));
  }
  if (scale > 0) req.set("scale", JsonValue::of(scale));
  if (trials > 0) req.set("trials", JsonValue::of(static_cast<std::int64_t>(trials)));
  if (seed >= 0) req.set("seed", JsonValue::of(static_cast<std::int64_t>(seed)));
  if (deadline_s >= 0) req.set("deadline_s", JsonValue::of(deadline_s));
  if (budget_s >= 0) req.set("budget_s", JsonValue::of(budget_s));
  if (no_digests) req.set("digests", JsonValue::of(false));

  std::string err;
  const int fd = connect_unix(socket_path, &err);
  if (fd < 0) {
    std::fprintf(stderr, "pcd_client: %s\n", err.c_str());
    return 1;
  }
  const auto t0 = std::chrono::steady_clock::now();
  if (!send_line(fd, req.write())) {
    std::fprintf(stderr, "pcd_client: send failed\n");
    ::close(fd);
    return 1;
  }

  // Progress: poll server stats on a side connection while we wait.
  int ticks = 0;
  auto on_tick = [&] {
    if (quiet || op != "submit") return;
    if (++ticks % 5 != 0) return;  // every ~1 s
    if (auto stats = one_shot(socket_path, "{\"op\":\"stats\"}");
        stats.has_value()) {
      std::fprintf(stderr, "pcd_client: waiting... queue_depth=%lld\n",
                   static_cast<long long>(stats->int_or("queue_depth", -1)));
    }
  };
  const auto reply_text = read_line(fd, on_tick);
  ::close(fd);
  if (!reply_text.has_value()) {
    std::fprintf(stderr, "pcd_client: connection closed without a response\n");
    return 1;
  }
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  pcd::service::JsonError jerr;
  auto reply = pcd::service::json_parse(*reply_text, &jerr);
  if (!reply.has_value() || !reply->is_object()) {
    std::fprintf(stderr, "pcd_client: unparseable response at byte %zu: %s\n",
                 jerr.pos, jerr.message.c_str());
    return 1;
  }

  if (op != "submit") {
    std::printf("%s\n", reply->write().c_str());
    return reply->bool_or("ok", false) ? 0 : 1;
  }

  const std::string status = reply->str_or("status", "error");
  const std::int64_t hits = reply->int_or("cache_hits", 0);
  const std::int64_t misses = reply->int_or("cache_misses", 0);
  const std::int64_t cells = reply->int_or("cells", 0);
  const double hit_ratio =
      hits + misses > 0
          ? static_cast<double>(hits) / static_cast<double>(hits + misses)
          : 0.0;
  std::fprintf(stderr,
               "pcd_client: status=%s fingerprint=%s cells=%lld"
               " cell_failures=%lld cache_hits=%lld cache_misses=%lld"
               " hit_ratio=%.2f retries=%lld wall_s=%.3f"
               " throughput_cells_per_s=%.3f\n",
               status.c_str(), reply->str_or("fingerprint", "-").c_str(),
               static_cast<long long>(cells),
               static_cast<long long>(reply->int_or("cell_failures", 0)),
               static_cast<long long>(hits), static_cast<long long>(misses),
               hit_ratio, static_cast<long long>(reply->int_or("retries", 0)),
               wall_s,
               wall_s > 0 ? static_cast<double>(cells) / wall_s : 0.0);
  if (const JsonValue* reason = reply->find("reason");
      reason != nullptr && reason->is_string()) {
    std::fprintf(stderr, "pcd_client: reason: %s\n", reason->as_string().c_str());
  }
  if (const JsonValue* dumps = reply->find("flight_recordings");
      dumps != nullptr && dumps->is_array() && !quiet) {
    std::fprintf(stderr, "pcd_client: %zu flight recording(s) attached\n",
                 dumps->items().size());
  }
  if (const JsonValue* tsv = reply->find("tsv");
      tsv != nullptr && tsv->is_string()) {
    std::fputs(tsv->as_string().c_str(), stdout);
  }
  return status == "ok" ? 0 : 1;
}
