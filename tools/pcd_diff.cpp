// pcd_diff: determinism digest tooling for simulated runs.
//
// Three subcommands chain into the divergence-debugging workflow
// (README.md "Debugging nondeterminism"):
//
//   pcd_diff run      --workload cg [--scale S --seed N --daemon
//                      --perturb Q --checkpoint-every K] --out FILE
//       Execute one instrumented run and write its RunDigest (text v1).
//
//   pcd_diff compare  FILE_A FILE_B
//       Diff two digest files.  Exit 0 identical, 1 diverged, 2 error.
//
//   pcd_diff localize --workload cg [--scale S --seed N --daemon
//                      --perturb Q --checkpoint-every K]
//                      [--expect-divergence]
//       Run the baseline config and the same config with the seq
//       perturbation applied as run B, diff their digests, and on
//       divergence re-run both with capture focused on the first diverging
//       checkpoint interval — printing the first diverging event (site
//       label, sequence number) and its full causal chain, all in one
//       invocation.  Exit 0 when the outcome matches the expectation
//       (identical by default, diverged-and-localized with
//       --expect-divergence), 1 otherwise, 2 on usage errors.
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>

#include "apps/npb.hpp"
#include "core/runner.hpp"
#include "telemetry/determinism.hpp"

namespace {

using pcd::telemetry::DeterminismOptions;
using pcd::telemetry::RunCapture;
using pcd::telemetry::RunDigest;

struct Options {
  std::string workload = "cg";
  double scale = 0.02;
  std::uint64_t seed = 1;
  bool daemon = false;
  std::uint64_t perturb = 0;
  std::uint64_t checkpoint_every = 4096;
  std::string out;
  bool expect_divergence = false;
};

int usage() {
  std::fprintf(stderr,
               "usage: pcd_diff run --workload NAME [--scale S] [--seed N] "
               "[--daemon]\n"
               "                    [--perturb Q] [--checkpoint-every K] --out FILE\n"
               "       pcd_diff compare FILE_A FILE_B\n"
               "       pcd_diff localize --workload NAME [--scale S] [--seed N] "
               "[--daemon]\n"
               "                    [--perturb Q] [--checkpoint-every K] "
               "[--expect-divergence]\n"
               "workloads: ft cg ep is lu mg bt sp\n");
  return 2;
}

std::optional<pcd::apps::Workload> make_workload(const std::string& name,
                                                 double scale) {
  using namespace pcd::apps;
  if (name == "ft") return make_ft(scale);
  if (name == "cg") return make_cg(scale);
  if (name == "ep") return make_ep(scale);
  if (name == "is") return make_is(scale);
  if (name == "lu") return make_lu(scale);
  if (name == "mg") return make_mg(scale);
  if (name == "bt") return make_bt(scale);
  if (name == "sp") return make_sp(scale);
  return std::nullopt;
}

bool parse_common(int argc, char** argv, int start, Options* o) {
  for (int i = start; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (a == "--workload") {
      const char* v = next();
      if (v == nullptr) return false;
      o->workload = v;
    } else if (a == "--scale") {
      const char* v = next();
      if (v == nullptr) return false;
      o->scale = std::atof(v);
    } else if (a == "--seed") {
      const char* v = next();
      if (v == nullptr) return false;
      o->seed = std::strtoull(v, nullptr, 10);
    } else if (a == "--perturb") {
      const char* v = next();
      if (v == nullptr) return false;
      o->perturb = std::strtoull(v, nullptr, 10);
    } else if (a == "--checkpoint-every") {
      const char* v = next();
      if (v == nullptr) return false;
      o->checkpoint_every = std::strtoull(v, nullptr, 10);
    } else if (a == "--out") {
      const char* v = next();
      if (v == nullptr) return false;
      o->out = v;
    } else if (a == "--daemon") {
      o->daemon = true;
    } else if (a == "--expect-divergence") {
      o->expect_divergence = true;
    } else {
      std::fprintf(stderr, "pcd_diff: unknown option '%s'\n", a.c_str());
      return false;
    }
  }
  return o->scale > 0;
}

pcd::core::RunConfig base_config(const Options& o) {
  pcd::core::RunConfig cfg;
  cfg.seed = o.seed;
  if (o.daemon) cfg.daemon = pcd::core::CpuspeedParams::v1_2_1();
  return cfg;
}

// One instrumented run of the workload under `det`; the perturbation (if
// any) rides in `det` so the localizer can inject it on run B only.
RunCapture instrumented_run(const Options& o, std::uint64_t perturb,
                            const DeterminismOptions& det) {
  auto w = make_workload(o.workload, o.scale);
  pcd::core::RunConfig cfg = base_config(o);
  cfg.determinism = det;
  cfg.determinism.perturb_seq = perturb;
  auto result = pcd::core::run_workload(*w, cfg);
  return result.determinism.has_value() ? std::move(*result.determinism)
                                        : RunCapture{};
}

int cmd_run(const Options& o) {
  if (!make_workload(o.workload, o.scale).has_value()) {
    std::fprintf(stderr, "pcd_diff: unknown workload '%s'\n", o.workload.c_str());
    return 2;
  }
  DeterminismOptions det;
  det.digest = true;
  det.checkpoint_every = o.checkpoint_every;
  const RunCapture cap = instrumented_run(o, o.perturb, det);
  const std::string text = cap.digest.to_text();
  if (o.out.empty() || o.out == "-") {
    std::fputs(text.c_str(), stdout);
  } else {
    std::ofstream f(o.out, std::ios::binary);
    if (!f) {
      std::fprintf(stderr, "pcd_diff: cannot write '%s'\n", o.out.c_str());
      return 2;
    }
    f << text;
  }
  std::fprintf(stderr, "pcd_diff: %s seed=%llu root=%016llx (%llu events)\n",
               o.workload.c_str(), static_cast<unsigned long long>(o.seed),
               static_cast<unsigned long long>(cap.digest.root()),
               static_cast<unsigned long long>(
                   cap.digest.streams[RunDigest::kEvents].count));
  return 0;
}

std::optional<RunDigest> load_digest(const char* path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) {
    std::fprintf(stderr, "pcd_diff: cannot read '%s'\n", path);
    return std::nullopt;
  }
  std::ostringstream ss;
  ss << f.rdbuf();
  auto d = RunDigest::parse(ss.str());
  if (!d.has_value()) {
    std::fprintf(stderr, "pcd_diff: '%s' is not a pcd-digest v1 file\n", path);
  }
  return d;
}

int cmd_compare(int argc, char** argv) {
  if (argc != 4) return usage();
  const auto a = load_digest(argv[2]);
  const auto b = load_digest(argv[3]);
  if (!a.has_value() || !b.has_value()) return 2;
  const auto d = pcd::telemetry::diff(*a, *b);
  std::printf("%s\n", d.summary().c_str());
  return d.diverged ? 1 : 0;
}

int cmd_localize(const Options& o) {
  if (!make_workload(o.workload, o.scale).has_value()) {
    std::fprintf(stderr, "pcd_diff: unknown workload '%s'\n", o.workload.c_str());
    return 2;
  }
  const auto run_a = [&o](const DeterminismOptions& det) {
    return instrumented_run(o, 0, det);
  };
  const auto run_b = [&o](const DeterminismOptions& det) {
    return instrumented_run(o, o.perturb, det);
  };
  const auto r = pcd::telemetry::localize(run_a, run_b, o.checkpoint_every);
  std::fputs(r.report.c_str(), stdout);
  if (o.expect_divergence) {
    return r.diverged && (r.first_a.has_value() || r.first_b.has_value()) ? 0 : 1;
  }
  return r.diverged ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  if (cmd == "compare") return cmd_compare(argc, argv);
  Options o;
  if (!parse_common(argc, argv, 2, &o)) return usage();
  if (cmd == "run") return cmd_run(o);
  if (cmd == "localize") return cmd_localize(o);
  return usage();
}
