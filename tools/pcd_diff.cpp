// pcd_diff: determinism digest tooling for simulated runs.
//
// Three subcommands chain into the divergence-debugging workflow
// (README.md "Debugging nondeterminism"):
//
//   pcd_diff run      --workload cg [--scale S --seed N --daemon
//                      --perturb Q --checkpoint-every K --shards N] --out FILE
//       Execute one instrumented run and write its RunDigest (text v1).
//       With --shards N > 1 the file also carries the N per-shard digest
//       parts, framed by "== shard S" separator lines (the v1 parser
//       rejects unknown record types, so the framing lives here).
//
//   pcd_diff compare  FILE_A FILE_B
//       Diff two digest files.  When both carry shard parts, the parts are
//       compared pairwise first and the first diverging shard is named
//       with its per-stream (hash, count) pairs — narrowing a machine-wide
//       divergence to one shard before the merged diff runs.  Exit 0
//       identical, 1 diverged, 2 error.
//
//   pcd_diff localize --workload cg [--scale S --seed N --daemon
//                      --perturb Q --checkpoint-every K]
//                      [--expect-divergence]
//       Run the baseline config and the same config with the seq
//       perturbation applied as run B, diff their digests, and on
//       divergence re-run both with capture focused on the first diverging
//       checkpoint interval — printing the first diverging event (site
//       label, sequence number) and its full causal chain, all in one
//       invocation.  Exit 0 when the outcome matches the expectation
//       (identical by default, diverged-and-localized with
//       --expect-divergence), 1 otherwise, 2 on usage errors.
//
//       With --shards N > 1 the perturbation/capture tier is unavailable
//       (dispatch ordinals are per-shard), so localize instead runs the
//       sharded config twice, compares the per-shard digest parts, and
//       names the first diverging shard — the repeat-determinism check for
//       the parallel engine.
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "apps/npb.hpp"
#include "core/runner.hpp"
#include "telemetry/determinism.hpp"

namespace {

using pcd::telemetry::DeterminismOptions;
using pcd::telemetry::RunCapture;
using pcd::telemetry::RunDigest;

struct Options {
  std::string workload = "cg";
  double scale = 0.02;
  std::uint64_t seed = 1;
  bool daemon = false;
  std::uint64_t perturb = 0;
  std::uint64_t checkpoint_every = 4096;
  int shards = 1;
  std::string out;
  bool expect_divergence = false;
};

int usage() {
  std::fprintf(stderr,
               "usage: pcd_diff run --workload NAME [--scale S] [--seed N] "
               "[--daemon]\n"
               "                    [--perturb Q] [--checkpoint-every K] "
               "[--shards N] --out FILE\n"
               "       pcd_diff compare FILE_A FILE_B\n"
               "       pcd_diff localize --workload NAME [--scale S] [--seed N] "
               "[--daemon]\n"
               "                    [--perturb Q] [--checkpoint-every K] "
               "[--shards N] [--expect-divergence]\n"
               "workloads: ft cg ep is lu mg bt sp\n");
  return 2;
}

std::optional<pcd::apps::Workload> make_workload(const std::string& name,
                                                 double scale) {
  using namespace pcd::apps;
  if (name == "ft") return make_ft(scale);
  if (name == "cg") return make_cg(scale);
  if (name == "ep") return make_ep(scale);
  if (name == "is") return make_is(scale);
  if (name == "lu") return make_lu(scale);
  if (name == "mg") return make_mg(scale);
  if (name == "bt") return make_bt(scale);
  if (name == "sp") return make_sp(scale);
  return std::nullopt;
}

bool parse_common(int argc, char** argv, int start, Options* o) {
  for (int i = start; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (a == "--workload") {
      const char* v = next();
      if (v == nullptr) return false;
      o->workload = v;
    } else if (a == "--scale") {
      const char* v = next();
      if (v == nullptr) return false;
      o->scale = std::atof(v);
    } else if (a == "--seed") {
      const char* v = next();
      if (v == nullptr) return false;
      o->seed = std::strtoull(v, nullptr, 10);
    } else if (a == "--perturb") {
      const char* v = next();
      if (v == nullptr) return false;
      o->perturb = std::strtoull(v, nullptr, 10);
    } else if (a == "--checkpoint-every") {
      const char* v = next();
      if (v == nullptr) return false;
      o->checkpoint_every = std::strtoull(v, nullptr, 10);
    } else if (a == "--shards") {
      const char* v = next();
      if (v == nullptr) return false;
      o->shards = std::atoi(v);
      if (o->shards < 1) return false;
    } else if (a == "--out") {
      const char* v = next();
      if (v == nullptr) return false;
      o->out = v;
    } else if (a == "--daemon") {
      o->daemon = true;
    } else if (a == "--expect-divergence") {
      o->expect_divergence = true;
    } else {
      std::fprintf(stderr, "pcd_diff: unknown option '%s'\n", a.c_str());
      return false;
    }
  }
  return o->scale > 0;
}

pcd::core::RunConfig base_config(const Options& o) {
  pcd::core::RunConfig cfg;
  cfg.seed = o.seed;
  cfg.shards = o.shards;
  if (o.daemon) cfg.daemon = pcd::core::CpuspeedParams::v1_2_1();
  return cfg;
}

// One instrumented run of the workload under `det`; the perturbation (if
// any) rides in `det` so the localizer can inject it on run B only.
RunCapture instrumented_run(const Options& o, std::uint64_t perturb,
                            const DeterminismOptions& det) {
  auto w = make_workload(o.workload, o.scale);
  pcd::core::RunConfig cfg = base_config(o);
  cfg.determinism = det;
  cfg.determinism.perturb_seq = perturb;
  auto result = pcd::core::run_workload(*w, cfg);
  return result.determinism.has_value() ? std::move(*result.determinism)
                                        : RunCapture{};
}

// A digest file: the merged (machine-wide) digest, plus — for sharded runs
// — the per-shard parts, framed by "== shard S" lines.  RunDigest::parse
// deliberately rejects unknown record types, so the multi-part framing is
// split off here before each chunk is handed to the v1 parser.
struct DigestFile {
  RunDigest merged;
  std::vector<RunDigest> parts;
};

std::string render_digest_file(const RunCapture& cap) {
  std::string text = cap.digest.to_text();
  for (std::size_t s = 0; s < cap.shard_parts.size(); ++s) {
    text += "== shard " + std::to_string(s) + "\n";
    text += cap.shard_parts[s].to_text();
  }
  return text;
}

int cmd_run(const Options& o) {
  if (!make_workload(o.workload, o.scale).has_value()) {
    std::fprintf(stderr, "pcd_diff: unknown workload '%s'\n", o.workload.c_str());
    return 2;
  }
  if (o.perturb != 0 && o.shards > 1) {
    std::fprintf(stderr,
                 "pcd_diff: --perturb needs machine-wide dispatch ordinals; "
                 "not available with --shards > 1\n");
    return 2;
  }
  DeterminismOptions det;
  det.digest = true;
  det.checkpoint_every = o.checkpoint_every;
  const RunCapture cap = instrumented_run(o, o.perturb, det);
  const std::string text = render_digest_file(cap);
  if (o.out.empty() || o.out == "-") {
    std::fputs(text.c_str(), stdout);
  } else {
    std::ofstream f(o.out, std::ios::binary);
    if (!f) {
      std::fprintf(stderr, "pcd_diff: cannot write '%s'\n", o.out.c_str());
      return 2;
    }
    f << text;
  }
  std::fprintf(stderr, "pcd_diff: %s seed=%llu root=%016llx (%llu events)\n",
               o.workload.c_str(), static_cast<unsigned long long>(o.seed),
               static_cast<unsigned long long>(cap.digest.root()),
               static_cast<unsigned long long>(
                   cap.digest.streams[RunDigest::kEvents].count));
  for (std::size_t s = 0; s < cap.shard_parts.size(); ++s) {
    std::fprintf(stderr, "pcd_diff:   shard %zu root=%016llx (%llu events)\n", s,
                 static_cast<unsigned long long>(cap.shard_parts[s].root()),
                 static_cast<unsigned long long>(
                     cap.shard_parts[s].streams[RunDigest::kEvents].count));
  }
  return 0;
}

std::optional<DigestFile> load_digest(const char* path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) {
    std::fprintf(stderr, "pcd_diff: cannot read '%s'\n", path);
    return std::nullopt;
  }
  std::ostringstream ss;
  ss << f.rdbuf();
  const std::string text = ss.str();

  // Split on "== shard S" framing lines (absent for single-engine files).
  std::vector<std::string> chunks;
  std::size_t pos = 0;
  while (true) {
    const std::size_t mark = text.find("== shard ", pos);
    chunks.push_back(text.substr(pos, mark == std::string::npos
                                          ? std::string::npos
                                          : mark - pos));
    if (mark == std::string::npos) break;
    const std::size_t nl = text.find('\n', mark);
    if (nl == std::string::npos) break;
    pos = nl + 1;
  }

  DigestFile out;
  auto merged = RunDigest::parse(chunks.front());
  if (!merged.has_value()) {
    std::fprintf(stderr, "pcd_diff: '%s' is not a pcd-digest v1 file\n", path);
    return std::nullopt;
  }
  out.merged = std::move(*merged);
  for (std::size_t i = 1; i < chunks.size(); ++i) {
    auto part = RunDigest::parse(chunks[i]);
    if (!part.has_value()) {
      std::fprintf(stderr, "pcd_diff: '%s': shard part %zu is malformed\n", path,
                   i - 1);
      return std::nullopt;
    }
    out.parts.push_back(std::move(*part));
  }
  return out;
}

// Pairwise per-shard comparison: prints each diverging shard's per-stream
// (hash, count) pairs and returns the first diverging shard (-1 if none).
int compare_shard_parts(const DigestFile& a, const DigestFile& b) {
  int first_diverging = -1;
  for (std::size_t s = 0; s < a.parts.size(); ++s) {
    const auto d = pcd::telemetry::diff(a.parts[s], b.parts[s]);
    if (!d.diverged) continue;
    if (first_diverging < 0) first_diverging = static_cast<int>(s);
    std::printf("shard %zu diverged (first stream: %s)\n", s,
                RunDigest::stream_name(d.stream));
    for (int i = 0; i < RunDigest::kStreams; ++i) {
      const auto& sa = a.parts[s].streams[i];
      const auto& sb = b.parts[s].streams[i];
      std::printf("  %-7s A %016llx/%llu  B %016llx/%llu%s\n",
                  RunDigest::stream_name(i),
                  static_cast<unsigned long long>(sa.hash),
                  static_cast<unsigned long long>(sa.count),
                  static_cast<unsigned long long>(sb.hash),
                  static_cast<unsigned long long>(sb.count),
                  sa.hash != sb.hash || sa.count != sb.count ? "  <-- differs"
                                                             : "");
    }
  }
  if (first_diverging >= 0) {
    std::printf("first diverging shard: %d\n", first_diverging);
  }
  return first_diverging;
}

int cmd_compare(int argc, char** argv) {
  if (argc != 4) return usage();
  const auto a = load_digest(argv[2]);
  const auto b = load_digest(argv[3]);
  if (!a.has_value() || !b.has_value()) return 2;
  if (!a->parts.empty() && a->parts.size() == b->parts.size()) {
    compare_shard_parts(*a, *b);
  } else if (a->parts.size() != b->parts.size()) {
    std::printf("shard counts differ (%zu vs %zu); comparing merged digests only\n",
                a->parts.size(), b->parts.size());
  }
  const auto d = pcd::telemetry::diff(a->merged, b->merged);
  std::printf("%s\n", d.summary().c_str());
  return d.diverged ? 1 : 0;
}

// Sharded localization: the capture/perturbation tier needs machine-wide
// dispatch ordinals, so at shards > 1 localize degrades to the strongest
// check available — run the config twice and name the first shard whose
// digest part diverges (repeat-determinism of the parallel engine).
int localize_sharded(const Options& o) {
  if (o.perturb != 0) {
    std::fprintf(stderr,
                 "pcd_diff: --perturb needs machine-wide dispatch ordinals; "
                 "not available with --shards > 1\n");
    return 2;
  }
  DeterminismOptions det;
  det.digest = true;
  det.checkpoint_every = o.checkpoint_every;
  auto cap_a = instrumented_run(o, 0, det);
  auto cap_b = instrumented_run(o, 0, det);
  const DigestFile a{std::move(cap_a.digest), std::move(cap_a.shard_parts)};
  const DigestFile b{std::move(cap_b.digest), std::move(cap_b.shard_parts)};
  const int diverging = compare_shard_parts(a, b);
  const auto d = pcd::telemetry::diff(a.merged, b.merged);
  std::printf("%s\n", d.summary().c_str());
  if (d.diverged) {
    std::printf("note: per-event localization requires --shards 1 "
                "(dispatch ordinals are per-shard)\n");
  }
  if (o.expect_divergence) return d.diverged && diverging >= 0 ? 0 : 1;
  return d.diverged ? 1 : 0;
}

int cmd_localize(const Options& o) {
  if (!make_workload(o.workload, o.scale).has_value()) {
    std::fprintf(stderr, "pcd_diff: unknown workload '%s'\n", o.workload.c_str());
    return 2;
  }
  if (o.shards > 1) return localize_sharded(o);
  const auto run_a = [&o](const DeterminismOptions& det) {
    return instrumented_run(o, 0, det);
  };
  const auto run_b = [&o](const DeterminismOptions& det) {
    return instrumented_run(o, o.perturb, det);
  };
  const auto r = pcd::telemetry::localize(run_a, run_b, o.checkpoint_every);
  std::fputs(r.report.c_str(), stdout);
  if (o.expect_divergence) {
    return r.diverged && (r.first_a.has_value() || r.first_b.has_value()) ? 0 : 1;
  }
  return r.diverged ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  if (cmd == "compare") return cmd_compare(argc, argv);
  Options o;
  if (!parse_common(argc, argv, 2, &o)) return usage();
  if (cmd == "run") return cmd_run(o);
  if (cmd == "localize") return cmd_localize(o);
  return usage();
}
