// pcd_service: the campaign server binary.
//
//   pcd_service --socket /tmp/pcd.sock [--cache-dir DIR] [--workers N]
//               [--campaign-threads N] [--max-queue N] [--deadline-s S]
//               [--budget-s S] [--max-retries N] [--no-cache-sync]
//
// Serves line-delimited JSON campaign submissions (see service/server.hpp)
// until SIGINT/SIGTERM or a client {"op":"shutdown"}; both paths drain
// gracefully: admission stops, in-flight campaigns finish, the cache index
// is persisted.  On startup the crash-safe result cache is recovered and a
// one-line report of what survived is printed — CI's kill -9 test greps it.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "service/server.hpp"
#include "service/service.hpp"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void handle_signal(int) { g_stop = 1; }

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --socket PATH [--cache-dir DIR] [--workers N]\n"
               "          [--campaign-threads N] [--max-queue N]\n"
               "          [--deadline-s S] [--budget-s S] [--max-retries N]\n"
               "          [--no-cache-sync]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path;
  pcd::service::ServiceOptions opts;
  opts.workers = 4;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (arg == "--socket" && (v = next())) {
      socket_path = v;
    } else if (arg == "--cache-dir" && (v = next())) {
      opts.cache_dir = v;
    } else if (arg == "--workers" && (v = next())) {
      opts.workers = std::atoi(v);
    } else if (arg == "--campaign-threads" && (v = next())) {
      opts.campaign_threads = std::atoi(v);
    } else if (arg == "--max-queue" && (v = next())) {
      opts.max_queue = static_cast<std::size_t>(std::atoll(v));
    } else if (arg == "--deadline-s" && (v = next())) {
      opts.default_deadline_s = std::atof(v);
    } else if (arg == "--budget-s" && (v = next())) {
      opts.default_budget_s = std::atof(v);
    } else if (arg == "--max-retries" && (v = next())) {
      opts.max_retries = std::atoi(v);
    } else if (arg == "--no-cache-sync") {
      opts.cache_sync = false;
    } else {
      return usage(argv[0]);
    }
  }
  if (socket_path.empty()) return usage(argv[0]);

  pcd::service::CampaignService service(opts);
  const auto cache = service.cache_stats();
  std::printf("pcd_service: cache recovered %lld entries, %lld corrupt"
              " (%lld torn bytes truncated%s)\n",
              static_cast<long long>(cache.recovered),
              static_cast<long long>(cache.corrupt),
              static_cast<long long>(cache.torn_bytes),
              cache.index_used ? ", via index" : "");

  pcd::service::SocketServer server(service, socket_path);
  server.on_shutdown([] { g_stop = 1; });
  std::string err;
  if (!server.start(&err)) {
    std::fprintf(stderr, "pcd_service: %s\n", err.c_str());
    return 1;
  }
  std::printf("pcd_service: listening on %s\n", socket_path.c_str());
  std::fflush(stdout);

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
  while (g_stop == 0) {
    timespec ts{0, 50'000'000};  // 50 ms
    nanosleep(&ts, nullptr);
  }

  std::printf("pcd_service: draining\n");
  std::fflush(stdout);
  server.stop();
  service.drain();
  const auto final_cache = service.cache_stats();
  std::printf("pcd_service: drained; cache %lld entries, hit ratio %.2f\n",
              static_cast<long long>(final_cache.entries),
              final_cache.hit_ratio());
  return 0;
}
